//! The CKKS context: prime chains, NTT plans, samplers, and cached base-
//! conversion tables.

use crate::params::CkksParams;
use neo_error::NeoError;
use neo_math::{primes, BconvTable, Domain, MathError, Modulus, RnsBasis, RnsPoly};
use neo_ntt::{cache as ntt_cache, radix2, NttPlan};
use parking_lot::RwLock;
use rand::Rng;
use rayon::prelude::*;
use std::collections::HashMap;
use std::sync::Arc;

/// Cache of BConv tables keyed by (source primes, destination primes).
type BconvMap = HashMap<(Vec<u64>, Vec<u64>), Arc<BconvTable>>;

/// Everything derived from a [`CkksParams`]: the modulus chains
/// (`q_0..q_L`, special `p_0..p_{K-1}`, and the KLSS auxiliary
/// `t_0..t_{α'-1}`), per-prime NTT plans, and table caches.
pub struct CkksContext {
    params: CkksParams,
    q_primes: Vec<u64>,
    p_primes: Vec<u64>,
    t_primes: Vec<u64>,
    q_moduli: Vec<Modulus>,
    p_moduli: Vec<Modulus>,
    t_moduli: Vec<Modulus>,
    /// Shared from the process-wide `neo_ntt::cache`, so contexts over the
    /// same chains (tests, benches, multiple keys) reuse one set of tables.
    plans: HashMap<u64, Arc<NttPlan>>,
    /// `P mod q_i` and `P⁻¹ mod q_i` for Mod Down.
    p_mod_q: Vec<u64>,
    p_inv_mod_q: Vec<u64>,
    bconv_cache: RwLock<BconvMap>,
}

impl std::fmt::Debug for CkksContext {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CkksContext")
            .field("n", &self.params.n())
            .field("levels", &self.q_primes.len())
            .field("special", &self.p_primes.len())
            .field("klss_limbs", &self.t_primes.len())
            .finish()
    }
}

impl CkksContext {
    /// Builds the context: generates prime chains and NTT plans.
    ///
    /// # Errors
    ///
    /// Propagates prime-generation and plan-construction failures; also
    /// fails when a KLSS `WordSize_T` exceeds 61 bits (word-arithmetic
    /// limit of this implementation — e.g. Table 4 Set-D, which this
    /// reproduction supports in the performance model only).
    pub fn new(params: CkksParams) -> Result<Self, MathError> {
        params.validate()?;
        let n = params.n();
        let count = params.max_level + 1;
        let (q_primes, p_primes) =
            primes::ckks_prime_chain(params.word_size, params.word_size, n, count, params.special)?;
        let t_primes = if let Some(k) = params.klss {
            if k.word_size_t > 61 {
                return Err(MathError::InvalidModulus(1u64 << 62));
            }
            let alpha_p = params.alpha_prime();
            if k.word_size_t == params.word_size {
                // Must avoid colliding with q/p: draw a longer run and skip.
                let all = primes::ntt_primes(k.word_size_t, n, count + params.special + alpha_p)?;
                all[count + params.special..].to_vec()
            } else {
                primes::ntt_primes(k.word_size_t, n, alpha_p)?
            }
        } else {
            Vec::new()
        };
        let to_moduli = |ps: &[u64]| -> Result<Vec<Modulus>, MathError> {
            ps.iter().map(|&q| Modulus::new(q)).collect()
        };
        let q_moduli = to_moduli(&q_primes)?;
        let p_moduli = to_moduli(&p_primes)?;
        let t_moduli = to_moduli(&t_primes)?;
        let mut plans = HashMap::new();
        for &q in q_primes.iter().chain(&p_primes).chain(&t_primes) {
            plans.insert(q, ntt_cache::get_or_build_with(q, n, params.backend)?);
        }
        let mut p_mod_q = Vec::with_capacity(q_moduli.len());
        let mut p_inv_mod_q = Vec::with_capacity(q_moduli.len());
        for m in &q_moduli {
            let mut acc = 1u64;
            for &p in &p_primes {
                acc = m.mul(acc, m.reduce(p));
            }
            p_mod_q.push(acc);
            p_inv_mod_q.push(m.inv(acc)?);
        }
        Ok(Self {
            params,
            q_primes,
            p_primes,
            t_primes,
            q_moduli,
            p_moduli,
            t_moduli,
            plans,
            p_mod_q,
            p_inv_mod_q,
            bconv_cache: RwLock::new(HashMap::new()),
        })
    }

    /// The static parameters.
    pub fn params(&self) -> &CkksParams {
        &self.params
    }

    /// Ring degree `N`.
    pub fn degree(&self) -> usize {
        self.params.n()
    }

    /// Data primes `q_0..q_L`.
    pub fn q_primes(&self) -> &[u64] {
        &self.q_primes
    }

    /// Special primes `p_0..p_{K-1}`.
    pub fn p_primes(&self) -> &[u64] {
        &self.p_primes
    }

    /// KLSS auxiliary primes `t_0..t_{α'-1}` (empty without KLSS).
    pub fn t_primes(&self) -> &[u64] {
        &self.t_primes
    }

    /// Data moduli up to level `l` inclusive.
    pub fn q_moduli(&self, level: usize) -> &[Modulus] {
        &self.q_moduli[..=level]
    }

    /// Special-prime moduli.
    pub fn p_moduli(&self) -> &[Modulus] {
        &self.p_moduli
    }

    /// KLSS auxiliary moduli.
    pub fn t_moduli(&self) -> &[Modulus] {
        &self.t_moduli
    }

    /// Concatenated `q_0..q_l, p_0..p_{K-1}` moduli (the `R_PQ` basis at
    /// level `l`).
    pub fn qp_moduli(&self, level: usize) -> Vec<Modulus> {
        let mut v = self.q_moduli[..=level].to_vec();
        v.extend_from_slice(&self.p_moduli);
        v
    }

    /// Concatenated `q` and `p` prime values at level `l`.
    pub fn qp_primes(&self, level: usize) -> Vec<u64> {
        let mut v = self.q_primes[..=level].to_vec();
        v.extend_from_slice(&self.p_primes);
        v
    }

    /// `P mod q_i`.
    pub fn p_mod_q(&self, i: usize) -> u64 {
        self.p_mod_q[i]
    }

    /// `P⁻¹ mod q_i`.
    pub fn p_inv_mod_q(&self, i: usize) -> u64 {
        self.p_inv_mod_q[i]
    }

    /// The NTT plan for one prime.
    ///
    /// # Panics
    ///
    /// Panics if the prime is not part of any chain in this context.
    pub fn plan(&self, prime: u64) -> &NttPlan {
        self.plans
            .get(&prime)
            .expect("prime not managed by this context")
    }

    /// The shared (`Arc`) NTT plan for one prime, for callers that need to
    /// hold the plan beyond the context borrow.
    ///
    /// # Panics
    ///
    /// Panics if the prime is not part of any chain in this context.
    pub fn plan_arc(&self, prime: u64) -> Arc<NttPlan> {
        self.plans
            .get(&prime)
            .expect("prime not managed by this context")
            .clone()
    }

    /// Forward-NTTs a polynomial in place (per-limb plans chosen by the
    /// modulus list).
    ///
    /// # Panics
    ///
    /// Panics if the poly is already in NTT domain or moduli are unknown.
    pub fn ntt_forward(&self, poly: &mut RnsPoly, moduli: &[Modulus]) {
        assert_eq!(poly.domain(), Domain::Coeff, "already in NTT domain");
        assert_eq!(poly.limb_count(), moduli.len());
        poly.limbs_mut()
            .par_iter_mut()
            .zip(moduli.par_iter())
            .for_each(|(limb, m)| {
                radix2::forward(self.plan(m.value()), limb);
            });
        poly.set_domain(Domain::Ntt);
    }

    /// Inverse-NTTs a polynomial in place.
    ///
    /// # Panics
    ///
    /// Panics if the poly is already in coefficient domain.
    pub fn ntt_inverse(&self, poly: &mut RnsPoly, moduli: &[Modulus]) {
        assert_eq!(poly.domain(), Domain::Ntt, "already in coefficient domain");
        assert_eq!(poly.limb_count(), moduli.len());
        poly.limbs_mut()
            .par_iter_mut()
            .zip(moduli.par_iter())
            .for_each(|(limb, m)| {
                radix2::inverse(self.plan(m.value()), limb);
            });
        poly.set_domain(Domain::Coeff);
    }

    /// Forward NTT with ABFT verification. Unlike [`Self::ntt_forward`],
    /// plans are re-fetched per limb from the process-wide
    /// [`neo_ntt::cache`] at transform time — so a quarantine/rebuild (or
    /// a fault-injected poisoning) of a cached plan is visible to the
    /// very next transform instead of being frozen at context
    /// construction. When the active [`neo_fault::VerifyPolicy`] says a
    /// check is due, each limb's (input, output) pair is spot-checked via
    /// [`neo_ntt::spot_check_transform`], which also re-hashes the plan
    /// against its build-time integrity token.
    ///
    /// # Errors
    ///
    /// [`NeoError::FaultDetected`] (site `ntt_forward` / `ntt_plan`) on a
    /// failed check; [`NeoError::Math`] if a plan cannot be built.
    ///
    /// # Panics
    ///
    /// Panics if the poly is already in NTT domain.
    pub fn try_ntt_forward(&self, poly: &mut RnsPoly, moduli: &[Modulus]) -> Result<(), NeoError> {
        assert_eq!(poly.domain(), Domain::Coeff, "already in NTT domain");
        assert_eq!(poly.limb_count(), moduli.len());
        let n = self.degree();
        let backend = self.params.backend;
        let verify = neo_fault::verification_due();
        let checks: Vec<Result<(), NeoError>> = poly
            .limbs_mut()
            .par_iter_mut()
            .zip(moduli.par_iter())
            .map(|(limb, m)| {
                let plan = ntt_cache::get_or_build_with(m.value(), n, backend)?;
                if verify {
                    let input = limb.clone();
                    radix2::forward(&plan, limb);
                    // Salt with the modulus: deterministic per limb, so a
                    // rayon schedule cannot change which point is checked.
                    neo_ntt::spot_check_transform(&plan, &input, limb, m.value(), true)
                } else {
                    radix2::forward(&plan, limb);
                    Ok(())
                }
            })
            .collect();
        checks.into_iter().collect::<Result<(), NeoError>>()?;
        poly.set_domain(Domain::Ntt);
        Ok(())
    }

    /// Inverse NTT with ABFT verification; see [`Self::try_ntt_forward`].
    ///
    /// # Errors
    ///
    /// [`NeoError::FaultDetected`] (site `ntt_inverse` / `ntt_plan`) on a
    /// failed check; [`NeoError::Math`] if a plan cannot be built.
    ///
    /// # Panics
    ///
    /// Panics if the poly is already in coefficient domain.
    pub fn try_ntt_inverse(&self, poly: &mut RnsPoly, moduli: &[Modulus]) -> Result<(), NeoError> {
        assert_eq!(poly.domain(), Domain::Ntt, "already in coefficient domain");
        assert_eq!(poly.limb_count(), moduli.len());
        let n = self.degree();
        let backend = self.params.backend;
        let verify = neo_fault::verification_due();
        let checks: Vec<Result<(), NeoError>> = poly
            .limbs_mut()
            .par_iter_mut()
            .zip(moduli.par_iter())
            .map(|(limb, m)| {
                let plan = ntt_cache::get_or_build_with(m.value(), n, backend)?;
                if verify {
                    let evals = limb.clone();
                    radix2::inverse(&plan, limb);
                    neo_ntt::spot_check_transform(&plan, limb, &evals, m.value(), false)
                } else {
                    radix2::inverse(&plan, limb);
                    Ok(())
                }
            })
            .collect();
        checks.into_iter().collect::<Result<(), NeoError>>()?;
        poly.set_domain(Domain::Coeff);
        Ok(())
    }

    /// Samples a ternary secret with values in `{-1, 0, 1}`.
    pub fn sample_ternary<R: Rng + ?Sized>(&self, rng: &mut R) -> Vec<i64> {
        (0..self.degree())
            .map(|_| rng.gen_range(-1i64..=1))
            .collect()
    }

    /// Samples a rounded Gaussian error vector (σ from the params,
    /// truncated at 6σ).
    pub fn sample_gaussian<R: Rng + ?Sized>(&self, rng: &mut R) -> Vec<i64> {
        let sigma = self.params.error_std;
        (0..self.degree())
            .map(|_| {
                // Box–Muller.
                let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
                let u2: f64 = rng.gen::<f64>();
                let g = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
                (g * sigma).round().clamp(-6.0 * sigma, 6.0 * sigma) as i64
            })
            .collect()
    }

    /// Uniformly random polynomial over the given moduli (NTT domain —
    /// uniform in either domain, and keys are used in NTT form).
    pub fn sample_uniform<R: Rng + ?Sized>(&self, rng: &mut R, moduli: &[Modulus]) -> RnsPoly {
        RnsPoly::random_uniform(rng, self.degree(), moduli, Domain::Ntt)
    }

    /// A cached base-conversion table between two prime lists.
    ///
    /// # Panics
    ///
    /// Panics if a basis cannot be constructed (shared primes etc. — a
    /// context-internal invariant violation).
    pub fn bconv_table(&self, src: &[u64], dst: &[u64]) -> Arc<BconvTable> {
        let key = (src.to_vec(), dst.to_vec());
        if let Some(t) = self.bconv_cache.read().get(&key) {
            return t.clone();
        }
        let src_basis = RnsBasis::new(src).expect("valid source basis");
        let dst_basis = RnsBasis::new(dst).expect("valid target basis");
        let table = Arc::new(
            BconvTable::new(&src_basis, &dst_basis)
                .expect("coprime bases")
                .with_backend(self.params.backend),
        );
        self.bconv_cache.write().insert(key, table.clone());
        table
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::{CkksParams, ParamSet};

    #[test]
    fn builds_test_context() {
        let ctx = CkksContext::new(CkksParams::test_tiny()).unwrap();
        assert_eq!(ctx.q_primes().len(), 6);
        assert_eq!(ctx.p_primes().len(), 2);
        assert!(!ctx.t_primes().is_empty());
        // All primes distinct.
        let mut all: Vec<u64> = ctx
            .q_primes()
            .iter()
            .chain(ctx.p_primes())
            .chain(ctx.t_primes())
            .copied()
            .collect();
        let n = all.len();
        all.sort_unstable();
        all.dedup();
        assert_eq!(all.len(), n);
    }

    #[test]
    fn set_d_rejected_functionally() {
        // WordSize_T = 64 exceeds the 61-bit word arithmetic limit: the
        // performance model covers Set-D, the functional context does not.
        assert!(CkksContext::new(ParamSet::D.params()).is_err());
    }

    #[test]
    fn ntt_roundtrip_via_context() {
        let ctx = CkksContext::new(CkksParams::test_tiny()).unwrap();
        let moduli = ctx.qp_moduli(2);
        let mut rng = rand::thread_rng();
        let mut poly = RnsPoly::random_uniform(&mut rng, ctx.degree(), &moduli, Domain::Coeff);
        let orig = poly.clone();
        ctx.ntt_forward(&mut poly, &moduli);
        assert_ne!(poly, orig);
        ctx.ntt_inverse(&mut poly, &moduli);
        assert_eq!(poly, orig);
    }

    #[test]
    fn p_inverse_identity() {
        let ctx = CkksContext::new(CkksParams::test_tiny()).unwrap();
        for (i, m) in ctx.q_moduli(5).iter().enumerate() {
            assert_eq!(m.mul(ctx.p_mod_q(i), ctx.p_inv_mod_q(i)), 1);
        }
    }

    #[test]
    fn bconv_table_cache_hits() {
        let ctx = CkksContext::new(CkksParams::test_tiny()).unwrap();
        let t1 = ctx.bconv_table(&ctx.q_primes()[..2], ctx.t_primes());
        let t2 = ctx.bconv_table(&ctx.q_primes()[..2], ctx.t_primes());
        assert!(Arc::ptr_eq(&t1, &t2));
    }

    #[test]
    fn gaussian_is_small_and_centered() {
        let ctx = CkksContext::new(CkksParams::test_tiny()).unwrap();
        let mut rng = rand::thread_rng();
        let e = ctx.sample_gaussian(&mut rng);
        let max = e.iter().map(|v| v.abs()).max().unwrap();
        assert!(max <= (6.0 * 3.2) as i64);
        let mean: f64 = e.iter().map(|&v| v as f64).sum::<f64>() / e.len() as f64;
        assert!(mean.abs() < 1.5, "gaussian mean {mean} too far from 0");
    }
}
