//! The CKKS primitive operations (Section 2.1): encryption, decryption,
//! HADD/PADD, PMULT, HMULT (with relinearization), HROTATE, Rescale and
//! Double Rescale.

use crate::ciphertext::{Ciphertext, Plaintext};
use crate::context::CkksContext;
use crate::keys::{KeyChest, KeyTarget, PublicKey, SecretKey};
use crate::keyswitch::{hybrid::keyswitch_hybrid, klss::keyswitch_klss};
use crate::params::KsMethod;
use neo_math::{Domain, RnsPoly};
use neo_trace::span;
use rand::Rng;

/// Remaining noise budget of a ciphertext in bits, estimated without the
/// secret key: `Σ_{i ≤ level} log2(q_i) − log2(scale)`. Emitted as a
/// `noise.budget` trace event after the noise-affecting operations so a
/// profile run shows the budget draining along the op sequence.
pub fn noise_budget_bits(ctx: &CkksContext, ct: &Ciphertext) -> f64 {
    let total: f64 = ctx
        .q_moduli(ct.level())
        .iter()
        .map(|m| (m.value() as f64).log2())
        .sum();
    total - ct.scale().log2()
}

fn emit_budget(ctx: &CkksContext, op: &str, ct: &Ciphertext) {
    if neo_trace::enabled() {
        neo_trace::event(
            "noise.budget",
            format!(
                "op={} level={} budget_bits={:.1}",
                op,
                ct.level(),
                noise_budget_bits(ctx, ct)
            ),
        );
    }
}

/// Encrypts a plaintext under the public key:
/// `ct = (v·p0 + e0 + m, v·p1 + e1)`.
pub fn encrypt<R: Rng + ?Sized>(
    ctx: &CkksContext,
    pk: &PublicKey,
    pt: &Plaintext,
    rng: &mut R,
) -> Ciphertext {
    let level = pt.level();
    let _s = span!("ckks.encrypt", level = level);
    let moduli = ctx.q_moduli(level).to_vec();
    let mut v = RnsPoly::from_signed(&ctx.sample_ternary(rng), &moduli);
    ctx.ntt_forward(&mut v, &moduli);
    let mut c0 = pk.p0_at(level);
    c0.mul_pointwise_assign(&v, &moduli);
    let mut c1 = pk.p1_at(level);
    c1.mul_pointwise_assign(&v, &moduli);
    ctx.ntt_inverse(&mut c0, &moduli);
    ctx.ntt_inverse(&mut c1, &moduli);
    let e0 = RnsPoly::from_signed(&ctx.sample_gaussian(rng), &moduli);
    let e1 = RnsPoly::from_signed(&ctx.sample_gaussian(rng), &moduli);
    c0.add_assign(&e0, &moduli);
    c0.add_assign(pt.poly(), &moduli);
    c1.add_assign(&e1, &moduli);
    let ct = Ciphertext::new(c0, c1, pt.scale(), level);
    emit_budget(ctx, "encrypt", &ct);
    ct
}

/// Decrypts: `m = c0 + c1·s`.
pub fn decrypt(ctx: &CkksContext, sk: &SecretKey, ct: &Ciphertext) -> Plaintext {
    let _s = span!("ckks.decrypt", level = ct.level());
    let moduli = ctx.q_moduli(ct.level()).to_vec();
    let s = sk.poly_ntt(ctx, &moduli);
    let mut c1 = ct.c1().clone();
    ctx.ntt_forward(&mut c1, &moduli);
    c1.mul_pointwise_assign(&s, &moduli);
    ctx.ntt_inverse(&mut c1, &moduli);
    let mut m = ct.c0().clone();
    m.add_assign(&c1, &moduli);
    Plaintext::new(m, ct.scale(), ct.level())
}

fn assert_compatible(a: &Ciphertext, b: &Ciphertext) {
    assert_eq!(
        a.level(),
        b.level(),
        "level mismatch — call level_reduce first"
    );
    let ratio = a.scale() / b.scale();
    // Rescaling divides by q_i ≈ 2^scale_bits, leaving a ~1e-6 relative
    // drift between "one rescale deep" operands; anything larger is a
    // genuine scale mismatch (e.g. Δ vs Δ²).
    assert!(
        (ratio - 1.0).abs() < 1e-4,
        "scale mismatch: {} vs {}",
        a.scale(),
        b.scale()
    );
}

/// HADD: ciphertext + ciphertext.
///
/// # Panics
///
/// Panics on level or scale mismatch.
pub fn hadd(ctx: &CkksContext, a: &Ciphertext, b: &Ciphertext) -> Ciphertext {
    assert_compatible(a, b);
    let moduli = ctx.q_moduli(a.level());
    let mut out = a.clone();
    let (c0, c1) = out.parts_mut();
    c0.add_assign(b.c0(), moduli);
    c1.add_assign(b.c1(), moduli);
    out
}

/// HSUB: ciphertext − ciphertext.
///
/// # Panics
///
/// Panics on level or scale mismatch.
pub fn hsub(ctx: &CkksContext, a: &Ciphertext, b: &Ciphertext) -> Ciphertext {
    assert_compatible(a, b);
    let moduli = ctx.q_moduli(a.level());
    let mut out = a.clone();
    let (c0, c1) = out.parts_mut();
    c0.sub_assign(b.c0(), moduli);
    c1.sub_assign(b.c1(), moduli);
    out
}

/// PADD: ciphertext + plaintext (scales must match).
///
/// # Panics
///
/// Panics on level or scale mismatch.
pub fn padd(ctx: &CkksContext, a: &Ciphertext, pt: &Plaintext) -> Ciphertext {
    assert_eq!(a.level(), pt.level(), "level mismatch");
    assert!(
        (a.scale() / pt.scale() - 1.0).abs() < 1e-4,
        "scale mismatch"
    );
    let moduli = ctx.q_moduli(a.level());
    let mut out = a.clone();
    out.parts_mut().0.add_assign(pt.poly(), moduli);
    out
}

/// PMULT: ciphertext × plaintext. The result's scale is the product of the
/// scales; rescale afterwards.
///
/// # Panics
///
/// Panics on level mismatch.
pub fn pmult(ctx: &CkksContext, a: &Ciphertext, pt: &Plaintext) -> Ciphertext {
    assert_eq!(a.level(), pt.level(), "level mismatch");
    let _s = span!("ckks.pmult", level = a.level());
    let moduli = ctx.q_moduli(a.level()).to_vec();
    let mut m = pt.poly().clone();
    ctx.ntt_forward(&mut m, &moduli);
    let mut c0 = a.c0().clone();
    let mut c1 = a.c1().clone();
    ctx.ntt_forward(&mut c0, &moduli);
    ctx.ntt_forward(&mut c1, &moduli);
    c0.mul_pointwise_assign(&m, &moduli);
    c1.mul_pointwise_assign(&m, &moduli);
    ctx.ntt_inverse(&mut c0, &moduli);
    ctx.ntt_inverse(&mut c1, &moduli);
    Ciphertext::new(c0, c1, a.scale() * pt.scale(), a.level())
}

/// HMULT: ciphertext × ciphertext with relinearization via the chest's
/// key-switching method of choice. The result's scale is the product;
/// rescale afterwards.
///
/// # Panics
///
/// Panics on level/scale mismatch.
pub fn hmult(chest: &KeyChest, a: &Ciphertext, b: &Ciphertext, method: KsMethod) -> Ciphertext {
    assert_eq!(a.level(), b.level(), "level mismatch");
    let ctx = chest.context();
    let level = a.level();
    let _s = span!("ckks.hmult", level = level);
    let moduli = ctx.q_moduli(level).to_vec();
    // Tensor product in NTT domain.
    let mut a0 = a.c0().clone();
    let mut a1 = a.c1().clone();
    let mut b0 = b.c0().clone();
    let mut b1 = b.c1().clone();
    ctx.ntt_forward(&mut a0, &moduli);
    ctx.ntt_forward(&mut a1, &moduli);
    ctx.ntt_forward(&mut b0, &moduli);
    ctx.ntt_forward(&mut b1, &moduli);
    let mut d0 = a0.clone();
    d0.mul_pointwise_assign(&b0, &moduli);
    let mut d1 = a0.clone();
    d1.mul_pointwise_assign(&b1, &moduli);
    let mut t = a1.clone();
    t.mul_pointwise_assign(&b0, &moduli);
    d1.add_assign(&t, &moduli);
    let mut d2 = a1.clone();
    d2.mul_pointwise_assign(&b1, &moduli);
    ctx.ntt_inverse(&mut d0, &moduli);
    ctx.ntt_inverse(&mut d1, &moduli);
    ctx.ntt_inverse(&mut d2, &moduli);
    // Relinearize d2.
    let (u0, u1) = switch(chest, level, KeyTarget::Relin, &d2, method);
    d0.add_assign(&u0, &moduli);
    d1.add_assign(&u1, &moduli);
    let out = Ciphertext::new(d0, d1, a.scale() * b.scale(), level);
    emit_budget(ctx, "hmult", &out);
    out
}

/// The Galois element `5^steps mod 2N` a left rotation by `steps` uses —
/// exposed so callers (e.g. the batch executor's key warm-up) can name
/// the exact [`KeyTarget::Galois`] key a rotation will request.
pub fn galois_element(n: usize, steps: usize) -> usize {
    let two_n = 2 * n;
    let mut g = 1usize;
    for _ in 0..steps % (n / 2) {
        g = (g * 5) % two_n;
    }
    g
}

/// HROTATE: rotates slots left by `steps` via the automorphism
/// `X ↦ X^{5^steps}` and a Galois key switch.
pub fn hrotate(chest: &KeyChest, a: &Ciphertext, steps: usize, method: KsMethod) -> Ciphertext {
    let g = galois_element(chest.context().degree(), steps);
    apply_galois(chest, a, g, method)
}

/// Complex conjugation of all slots (`X ↦ X^{2N-1}`).
pub fn hconjugate(chest: &KeyChest, a: &Ciphertext, method: KsMethod) -> Ciphertext {
    let n = chest.context().degree();
    apply_galois(chest, a, 2 * n - 1, method)
}

fn apply_galois(chest: &KeyChest, a: &Ciphertext, g: usize, method: KsMethod) -> Ciphertext {
    let ctx = chest.context();
    let level = a.level();
    let _s = span!("ckks.galois", level = level, g = g);
    let moduli = ctx.q_moduli(level).to_vec();
    let mut c0 = a.c0().automorphism(g, &moduli);
    let c1 = a.c1().automorphism(g, &moduli);
    let (u0, u1) = switch(chest, level, KeyTarget::Galois(g), &c1, method);
    c0.add_assign(&u0, &moduli);
    Ciphertext::new(c0, u1, a.scale(), level)
}

fn switch(
    chest: &KeyChest,
    level: usize,
    target: KeyTarget,
    d: &RnsPoly,
    method: KsMethod,
) -> (RnsPoly, RnsPoly) {
    let ctx = chest.context();
    match method {
        KsMethod::Hybrid => {
            let key = chest.hybrid_key(level, target);
            keyswitch_hybrid(ctx, &key, d)
        }
        KsMethod::Klss => {
            let key = chest.klss_key(level, target);
            keyswitch_klss(ctx, &key, d)
        }
    }
}

/// Rescale: drops the last limb and divides by `q_l`, reducing noise and
/// scale (Section 2.1).
///
/// # Panics
///
/// Panics at level 0 (no limb left to drop).
pub fn rescale(ctx: &CkksContext, ct: &Ciphertext) -> Ciphertext {
    let level = ct.level();
    assert!(level >= 1, "cannot rescale at level 0");
    let _s = span!("ckks.rescale", level = level);
    let q_last = ctx.q_moduli(level)[level];
    let moduli = ctx.q_moduli(level - 1).to_vec();
    let rescale_poly = |p: &RnsPoly| -> RnsPoly {
        let mut out = RnsPoly::zero(p.degree(), level, Domain::Coeff);
        let last = p.limb(level);
        for (i, m) in moduli.iter().enumerate() {
            let inv = m.inv(m.reduce(q_last.value())).expect("coprime chain");
            let dst = out.limb_mut(i);
            for (c, d) in dst.iter_mut().enumerate() {
                // Centered lift of the dropped limb keeps rounding noise
                // at q_l/2 instead of q_l.
                let centered = q_last.to_signed(last[c]);
                let v = neo_math::signed_mod(centered, m.value());
                *d = m.mul(m.sub(p.limb(i)[c], v), inv);
            }
        }
        out
    };
    let c0 = rescale_poly(ct.c0());
    let c1 = rescale_poly(ct.c1());
    let out = Ciphertext::new(c0, c1, ct.scale() / q_last.value() as f64, level - 1);
    emit_budget(ctx, "rescale", &out);
    out
}

/// Double Rescale (DS): two consecutive rescales, consuming two levels —
/// required for precision at small word sizes (SHARP / Section 2.1).
///
/// # Panics
///
/// Panics below level 2.
pub fn double_rescale(ctx: &CkksContext, ct: &Ciphertext) -> Ciphertext {
    rescale(ctx, &rescale(ctx, ct))
}

/// Drops limbs without scaling to bring `ct` down to `level` (modulus
/// reduction, used for level alignment).
///
/// # Panics
///
/// Panics if `level` exceeds the ciphertext's current level.
pub fn level_reduce(ct: &Ciphertext, level: usize) -> Ciphertext {
    assert!(level <= ct.level(), "cannot raise level");
    let (mut c0, mut c1) = (ct.c0().clone(), ct.c1().clone());
    c0.truncate_limbs(level + 1);
    c1.truncate_limbs(level + 1);
    Ciphertext::new(c0, c1, ct.scale(), level)
}
