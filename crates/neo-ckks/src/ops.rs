//! The CKKS primitive operations (Section 2.1): encryption, decryption,
//! HADD/PADD, PMULT, HMULT (with relinearization), HROTATE, Rescale and
//! Double Rescale.
//!
//! Every operation comes in a fallible `try_*` form returning
//! [`Result<_, NeoError>`] — the preferred entry points, also used by the
//! [`crate::engine::FheEngine`] session facade. The original panicking
//! names remain as thin deprecated wrappers for one release.

use crate::ciphertext::{Ciphertext, Plaintext};
use crate::context::CkksContext;
use crate::keys::{KeyChest, KeyTarget, PublicKey, SecretKey};
use crate::keyswitch::{hybrid::keyswitch_hybrid, klss::keyswitch_klss};
use crate::params::KsMethod;
use neo_error::NeoError;
use neo_math::{Domain, RnsPoly};
use neo_trace::span;
use rand::Rng;

/// Relative scale drift tolerated between operands: rescaling divides by
/// `q_i ≈ 2^scale_bits`, leaving a ~1e-6 relative drift between "one
/// rescale deep" operands; anything larger is a genuine scale mismatch
/// (e.g. Δ vs Δ²).
pub const SCALE_TOLERANCE: f64 = 1e-4;

/// Remaining noise budget of a ciphertext in bits, estimated without the
/// secret key: `Σ_{i ≤ level} log2(q_i) − log2(scale)`. Emitted as a
/// `noise.budget` trace event after the noise-affecting operations so a
/// profile run shows the budget draining along the op sequence.
pub fn noise_budget_bits(ctx: &CkksContext, ct: &Ciphertext) -> f64 {
    let total: f64 = ctx
        .q_moduli(ct.level())
        .iter()
        .map(|m| (m.value() as f64).log2())
        .sum();
    total - ct.scale().log2()
}

fn emit_budget(ctx: &CkksContext, op: &str, ct: &Ciphertext) {
    if neo_trace::enabled() {
        neo_trace::event(
            "noise.budget",
            format!(
                "op={} level={} budget_bits={:.1}",
                op,
                ct.level(),
                noise_budget_bits(ctx, ct)
            ),
        );
    }
}

/// Injection point for spurious op-level faults (`neo_fault`'s `ckks_op`
/// site): when an armed [`neo_fault::FaultPlan`] draws a fire for this
/// opportunity, the op fails with a retryable [`NeoError::FaultDetected`]
/// instead of producing a result — exercising the recovery machinery in
/// [`crate::batch::BatchProgram::execute_with_report`].
fn fault_gate(op: &'static str) -> Result<(), NeoError> {
    if neo_fault::armed() && neo_fault::fires(neo_fault::FaultSite::CkksOp) {
        return Err(NeoError::fault_detected(
            "ckks_op",
            format!("injected transient fault in {op}"),
        ));
    }
    Ok(())
}

/// The level must sit inside the context's modulus chain.
fn check_level(ctx: &CkksContext, op: &'static str, level: usize) -> Result<(), NeoError> {
    let max = ctx.params().max_level;
    if level > max {
        return Err(NeoError::parameter_mismatch(
            op,
            format!("level {level} exceeds the chain's max level {max}"),
        ));
    }
    Ok(())
}

/// Two ciphertext operands must agree on level and (within
/// [`SCALE_TOLERANCE`]) on scale.
fn check_compatible(op: &'static str, a: &Ciphertext, b: &Ciphertext) -> Result<(), NeoError> {
    if a.level() != b.level() {
        return Err(NeoError::level_mismatch(op, a.level(), b.level()));
    }
    check_scales(op, a.scale(), b.scale())
}

fn check_scales(op: &'static str, left: f64, right: f64) -> Result<(), NeoError> {
    if (left / right - 1.0).abs() >= SCALE_TOLERANCE {
        return Err(NeoError::scale_mismatch(op, left, right));
    }
    Ok(())
}

/// Encrypts a plaintext under the public key:
/// `ct = (v·p0 + e0 + m, v·p1 + e1)`.
///
/// # Errors
///
/// [`NeoError::ParameterMismatch`] if the plaintext's level exceeds the
/// modulus chain.
pub fn try_encrypt<R: Rng + ?Sized>(
    ctx: &CkksContext,
    pk: &PublicKey,
    pt: &Plaintext,
    rng: &mut R,
) -> Result<Ciphertext, NeoError> {
    let level = pt.level();
    check_level(ctx, "encrypt", level)?;
    let _s = span!("ckks.encrypt", level = level);
    let moduli = ctx.q_moduli(level).to_vec();
    let mut v = RnsPoly::from_signed(&ctx.sample_ternary(rng), &moduli);
    ctx.try_ntt_forward(&mut v, &moduli)?;
    let mut c0 = pk.p0_at(level);
    c0.mul_pointwise_assign(&v, &moduli);
    let mut c1 = pk.p1_at(level);
    c1.mul_pointwise_assign(&v, &moduli);
    ctx.try_ntt_inverse(&mut c0, &moduli)?;
    ctx.try_ntt_inverse(&mut c1, &moduli)?;
    let e0 = RnsPoly::from_signed(&ctx.sample_gaussian(rng), &moduli);
    let e1 = RnsPoly::from_signed(&ctx.sample_gaussian(rng), &moduli);
    c0.add_assign(&e0, &moduli);
    c0.add_assign(pt.poly(), &moduli);
    c1.add_assign(&e1, &moduli);
    let ct = Ciphertext::new(c0, c1, pt.scale(), level);
    emit_budget(ctx, "encrypt", &ct);
    Ok(ct)
}

/// Decrypts: `m = c0 + c1·s`.
///
/// # Errors
///
/// [`NeoError::ParameterMismatch`] if the ciphertext's level exceeds the
/// modulus chain.
pub fn try_decrypt(
    ctx: &CkksContext,
    sk: &SecretKey,
    ct: &Ciphertext,
) -> Result<Plaintext, NeoError> {
    check_level(ctx, "decrypt", ct.level())?;
    let _s = span!("ckks.decrypt", level = ct.level());
    let moduli = ctx.q_moduli(ct.level()).to_vec();
    let s = sk.poly_ntt(ctx, &moduli);
    let mut c1 = ct.c1().clone();
    ctx.try_ntt_forward(&mut c1, &moduli)?;
    c1.mul_pointwise_assign(&s, &moduli);
    ctx.try_ntt_inverse(&mut c1, &moduli)?;
    let mut m = ct.c0().clone();
    m.add_assign(&c1, &moduli);
    Ok(Plaintext::new(m, ct.scale(), ct.level()))
}

/// HADD: ciphertext + ciphertext.
///
/// # Errors
///
/// [`NeoError::LevelMismatch`] / [`NeoError::ScaleMismatch`] if the
/// operands disagree on level or scale.
pub fn try_hadd(ctx: &CkksContext, a: &Ciphertext, b: &Ciphertext) -> Result<Ciphertext, NeoError> {
    fault_gate("hadd")?;
    check_compatible("hadd", a, b)?;
    let obs = crate::metrics::ObserveOp::start(crate::metrics::OpKind::HAdd, ctx, &[a, b]);
    let moduli = ctx.q_moduli(a.level());
    let mut out = a.clone();
    let (c0, c1) = out.parts_mut();
    c0.add_assign(b.c0(), moduli);
    c1.add_assign(b.c1(), moduli);
    if let Some(obs) = obs {
        obs.success(ctx, &out);
    }
    Ok(out)
}

/// HSUB: ciphertext − ciphertext.
///
/// # Errors
///
/// [`NeoError::LevelMismatch`] / [`NeoError::ScaleMismatch`] if the
/// operands disagree on level or scale.
pub fn try_hsub(ctx: &CkksContext, a: &Ciphertext, b: &Ciphertext) -> Result<Ciphertext, NeoError> {
    check_compatible("hsub", a, b)?;
    let moduli = ctx.q_moduli(a.level());
    let mut out = a.clone();
    let (c0, c1) = out.parts_mut();
    c0.sub_assign(b.c0(), moduli);
    c1.sub_assign(b.c1(), moduli);
    Ok(out)
}

/// PADD: ciphertext + plaintext (scales must match).
///
/// # Errors
///
/// [`NeoError::LevelMismatch`] / [`NeoError::ScaleMismatch`] if the
/// operands disagree on level or scale.
pub fn try_padd(ctx: &CkksContext, a: &Ciphertext, pt: &Plaintext) -> Result<Ciphertext, NeoError> {
    if a.level() != pt.level() {
        return Err(NeoError::level_mismatch("padd", a.level(), pt.level()));
    }
    check_scales("padd", a.scale(), pt.scale())?;
    let moduli = ctx.q_moduli(a.level());
    let mut out = a.clone();
    out.parts_mut().0.add_assign(pt.poly(), moduli);
    Ok(out)
}

/// PMULT: ciphertext × plaintext. The result's scale is the product of the
/// scales; rescale afterwards.
///
/// # Errors
///
/// [`NeoError::LevelMismatch`] if the operands disagree on level.
pub fn try_pmult(
    ctx: &CkksContext,
    a: &Ciphertext,
    pt: &Plaintext,
) -> Result<Ciphertext, NeoError> {
    if a.level() != pt.level() {
        return Err(NeoError::level_mismatch("pmult", a.level(), pt.level()));
    }
    let _s = span!("ckks.pmult", level = a.level());
    let moduli = ctx.q_moduli(a.level()).to_vec();
    let mut m = pt.poly().clone();
    ctx.try_ntt_forward(&mut m, &moduli)?;
    let mut c0 = a.c0().clone();
    let mut c1 = a.c1().clone();
    ctx.try_ntt_forward(&mut c0, &moduli)?;
    ctx.try_ntt_forward(&mut c1, &moduli)?;
    c0.mul_pointwise_assign(&m, &moduli);
    c1.mul_pointwise_assign(&m, &moduli);
    ctx.try_ntt_inverse(&mut c0, &moduli)?;
    ctx.try_ntt_inverse(&mut c1, &moduli)?;
    Ok(Ciphertext::new(c0, c1, a.scale() * pt.scale(), a.level()))
}

/// HMULT: ciphertext × ciphertext with relinearization via the chest's
/// key-switching method of choice. The result's scale is the product;
/// rescale afterwards.
///
/// # Errors
///
/// [`NeoError::LevelMismatch`] if the operands disagree on level;
/// [`NeoError::KeySwitchKeyMissing`] if the relinearization key cannot be
/// produced (e.g. KLSS requested without a KLSS parameter configuration).
pub fn try_hmult(
    chest: &KeyChest,
    a: &Ciphertext,
    b: &Ciphertext,
    method: KsMethod,
) -> Result<Ciphertext, NeoError> {
    fault_gate("hmult")?;
    if a.level() != b.level() {
        return Err(NeoError::level_mismatch("hmult", a.level(), b.level()));
    }
    let ctx = chest.context();
    let obs = crate::metrics::ObserveOp::start(crate::metrics::OpKind::HMult, ctx, &[a, b]);
    let level = a.level();
    let _s = span!("ckks.hmult", level = level);
    let moduli = ctx.q_moduli(level).to_vec();
    // Tensor product in NTT domain.
    let mut a0 = a.c0().clone();
    let mut a1 = a.c1().clone();
    let mut b0 = b.c0().clone();
    let mut b1 = b.c1().clone();
    ctx.try_ntt_forward(&mut a0, &moduli)?;
    ctx.try_ntt_forward(&mut a1, &moduli)?;
    ctx.try_ntt_forward(&mut b0, &moduli)?;
    ctx.try_ntt_forward(&mut b1, &moduli)?;
    let mut d0 = a0.clone();
    d0.mul_pointwise_assign(&b0, &moduli);
    let mut d1 = a0.clone();
    d1.mul_pointwise_assign(&b1, &moduli);
    let mut t = a1.clone();
    t.mul_pointwise_assign(&b0, &moduli);
    d1.add_assign(&t, &moduli);
    let mut d2 = a1.clone();
    d2.mul_pointwise_assign(&b1, &moduli);
    ctx.try_ntt_inverse(&mut d0, &moduli)?;
    ctx.try_ntt_inverse(&mut d1, &moduli)?;
    ctx.try_ntt_inverse(&mut d2, &moduli)?;
    // Relinearize d2.
    let (u0, u1) = switch(chest, level, KeyTarget::Relin, &d2, method)?;
    d0.add_assign(&u0, &moduli);
    d1.add_assign(&u1, &moduli);
    let out = Ciphertext::new(d0, d1, a.scale() * b.scale(), level);
    emit_budget(ctx, "hmult", &out);
    if let Some(obs) = obs {
        obs.success(ctx, &out);
    }
    Ok(out)
}

/// The Galois element `5^steps mod 2N` a left rotation by `steps` uses —
/// exposed so callers (e.g. the batch executor's key warm-up) can name
/// the exact [`KeyTarget::Galois`] key a rotation will request.
pub fn galois_element(n: usize, steps: usize) -> usize {
    let two_n = 2 * n;
    let mut g = 1usize;
    for _ in 0..steps % (n / 2) {
        g = (g * 5) % two_n;
    }
    g
}

/// HROTATE: rotates slots left by `steps` via the automorphism
/// `X ↦ X^{5^steps}` and a Galois key switch.
///
/// # Errors
///
/// [`NeoError::KeySwitchKeyMissing`] if the Galois key cannot be produced.
pub fn try_hrotate(
    chest: &KeyChest,
    a: &Ciphertext,
    steps: usize,
    method: KsMethod,
) -> Result<Ciphertext, NeoError> {
    fault_gate("hrotate")?;
    let ctx = chest.context();
    let obs = crate::metrics::ObserveOp::start(crate::metrics::OpKind::HRotate, ctx, &[a]);
    let g = galois_element(ctx.degree(), steps);
    let out = apply_galois(chest, a, g, method)?;
    if let Some(obs) = obs {
        obs.success(ctx, &out);
    }
    Ok(out)
}

/// Complex conjugation of all slots (`X ↦ X^{2N-1}`).
///
/// # Errors
///
/// [`NeoError::KeySwitchKeyMissing`] if the conjugation key cannot be
/// produced.
pub fn try_hconjugate(
    chest: &KeyChest,
    a: &Ciphertext,
    method: KsMethod,
) -> Result<Ciphertext, NeoError> {
    let n = chest.context().degree();
    apply_galois(chest, a, 2 * n - 1, method)
}

fn apply_galois(
    chest: &KeyChest,
    a: &Ciphertext,
    g: usize,
    method: KsMethod,
) -> Result<Ciphertext, NeoError> {
    let ctx = chest.context();
    let level = a.level();
    check_level(ctx, "galois", level)?;
    let _s = span!("ckks.galois", level = level, g = g);
    let moduli = ctx.q_moduli(level).to_vec();
    let mut c0 = a.c0().automorphism(g, &moduli);
    let c1 = a.c1().automorphism(g, &moduli);
    let (u0, u1) = switch(chest, level, KeyTarget::Galois(g), &c1, method)?;
    c0.add_assign(&u0, &moduli);
    Ok(Ciphertext::new(c0, u1, a.scale(), level))
}

fn switch(
    chest: &KeyChest,
    level: usize,
    target: KeyTarget,
    d: &RnsPoly,
    method: KsMethod,
) -> Result<(RnsPoly, RnsPoly), NeoError> {
    let ctx = chest.context();
    match method {
        KsMethod::Hybrid => {
            let key = chest.hybrid_key(level, target);
            keyswitch_hybrid(ctx, &key, d)
        }
        KsMethod::Klss => {
            let key = chest.klss_key(level, target)?;
            keyswitch_klss(ctx, &key, d)
        }
    }
}

/// Rescale: drops the last limb and divides by `q_l`, reducing noise and
/// scale (Section 2.1).
///
/// # Errors
///
/// [`NeoError::ModulusChainExhausted`] at level 0 (no limb left to drop).
pub fn try_rescale(ctx: &CkksContext, ct: &Ciphertext) -> Result<Ciphertext, NeoError> {
    fault_gate("rescale")?;
    let level = ct.level();
    if level < 1 {
        return Err(NeoError::chain_exhausted("rescale", level, 1));
    }
    let obs = crate::metrics::ObserveOp::start(crate::metrics::OpKind::Rescale, ctx, &[ct]);
    let _s = span!("ckks.rescale", level = level);
    let q_last = ctx.q_moduli(level)[level];
    let moduli = ctx.q_moduli(level - 1).to_vec();
    let rescale_poly = |p: &RnsPoly| -> RnsPoly {
        let mut out = RnsPoly::zero(p.degree(), level, Domain::Coeff);
        let last = p.limb(level);
        for (i, m) in moduli.iter().enumerate() {
            let inv = m.inv(m.reduce(q_last.value())).expect("coprime chain");
            let dst = out.limb_mut(i);
            for (c, d) in dst.iter_mut().enumerate() {
                // Centered lift of the dropped limb keeps rounding noise
                // at q_l/2 instead of q_l.
                let centered = q_last.to_signed(last[c]);
                let v = neo_math::signed_mod(centered, m.value());
                *d = m.mul(m.sub(p.limb(i)[c], v), inv);
            }
        }
        out
    };
    let c0 = rescale_poly(ct.c0());
    let c1 = rescale_poly(ct.c1());
    let out = Ciphertext::new(c0, c1, ct.scale() / q_last.value() as f64, level - 1);
    emit_budget(ctx, "rescale", &out);
    if let Some(obs) = obs {
        obs.success(ctx, &out);
    }
    Ok(out)
}

/// Double Rescale (DS): two consecutive rescales, consuming two levels —
/// required for precision at small word sizes (SHARP / Section 2.1).
///
/// # Errors
///
/// [`NeoError::ModulusChainExhausted`] below level 2.
pub fn try_double_rescale(ctx: &CkksContext, ct: &Ciphertext) -> Result<Ciphertext, NeoError> {
    if ct.level() < 2 {
        return Err(NeoError::chain_exhausted("double_rescale", ct.level(), 2));
    }
    try_rescale(ctx, &try_rescale(ctx, ct)?)
}

/// Drops limbs without scaling to bring `ct` down to `level` (modulus
/// reduction, used for level alignment).
///
/// # Errors
///
/// [`NeoError::ParameterMismatch`] if `level` exceeds the ciphertext's
/// current level (a ciphertext can never be raised).
pub fn try_level_reduce(ct: &Ciphertext, level: usize) -> Result<Ciphertext, NeoError> {
    if level > ct.level() {
        return Err(NeoError::parameter_mismatch(
            "level_reduce",
            format!("cannot raise level {} to {level}", ct.level()),
        ));
    }
    let (mut c0, mut c1) = (ct.c0().clone(), ct.c1().clone());
    c0.truncate_limbs(level + 1);
    c1.truncate_limbs(level + 1);
    Ok(Ciphertext::new(c0, c1, ct.scale(), level))
}
