//! Kernel-DAG builders: the CKKS pipelines as [`OpGraph`]s.
//!
//! This module is the graph-shaped source of truth for the kernel
//! sequences in [`crate::cost`]: each builder appends the kernels of one
//! CKKS operation (HMult, HRotate, Rescale, KeySwitch, bootstrap
//! segments) to an [`OpGraph`] *with their real data dependencies* —
//! e.g. the β Mod Up BConvs of one key switch are mutually independent,
//! and the element-wise prologue of an HMult is a fusable chain. The flat
//! kernel sequences [`crate::cost::op_profiles`] returns are simply the
//! topological order of these graphs ([`OpGraph::profiles`]), so the
//! closed-form cost model and the `neo-sched` multi-stream simulator
//! price exactly the same work.
//!
//! Node insertion order deliberately matches the historical sequence
//! order of `cost.rs` (kernel by kernel), which keeps every calibrated
//! sums-based result unchanged.

use crate::bootstrap::TraceStep;
use crate::cost::{CostConfig, Operation};
use crate::params::{CkksParams, KsMethod};
use neo_kernels::{bconv, elementwise, ip, ntt, BconvGeom, ElemGeom, IpGeom, KernelClass, NttGeom};
use neo_sched::{NodeId, OpGraph};

/// Appends `profile` classified as `class`, depending on `deps`.
fn push(
    g: &mut OpGraph,
    profile: neo_gpu_sim::KernelProfile,
    class: KernelClass,
    tag: usize,
    deps: &[NodeId],
) -> NodeId {
    let id = g.add(profile, class.fusable(), tag);
    for &d in deps {
        g.depend(d, id);
    }
    id
}

/// The IP kernel profile under a config (matrix vs element-wise, with
/// Neo's adaptive target rule).
pub(crate) fn ip_profile(geom: &IpGeom, cfg: &CostConfig) -> neo_gpu_sim::KernelProfile {
    if !cfg.ip_matrix {
        return ip::profile_original(geom);
    }
    let target = if cfg.ip_adaptive {
        ip::neo_target(geom)
    } else {
        cfg.ip_target
    };
    ip::profile_matrix(geom, target)
}

/// Appends one KeySwitch at `level` to `g`; the first kernel (the input
/// INTT) depends on `after`, and the returned node is the exit (the Mod
/// Down ModADD). Kernel insertion order matches
/// [`crate::cost::keyswitch_profiles`].
pub fn append_keyswitch(
    g: &mut OpGraph,
    p: &CkksParams,
    level: usize,
    cfg: &CostConfig,
    after: &[NodeId],
    tag: usize,
) -> NodeId {
    let n = p.n();
    let bs = p.batch_size;
    let w = p.word_size;
    let k = p.special;
    let alpha = p.alpha();
    let beta = p.beta(level);
    let limbs_qp = level + 1 + k;
    let bconv_profile = |geom: &BconvGeom| {
        if cfg.bconv_matrix {
            bconv::profile_matrix(geom, cfg.bconv_target)
        } else {
            bconv::profile_original(geom)
        }
    };
    // INTT of the keyswitch input (NTT-resident convention).
    let intt_in = push(
        g,
        ntt::profile(
            &NttGeom {
                n,
                count: bs * (level + 1),
                w,
            },
            cfg.ntt_alg,
            cfg.ntt_target,
        ),
        KernelClass::Ntt,
        tag,
        after,
    );
    // Method-specific pipeline; `tails` are the nodes Mod Down reads.
    let tails: Vec<NodeId> = match cfg.method {
        KsMethod::Hybrid => {
            let geom = BconvGeom {
                n,
                batch: bs,
                alpha,
                alpha_out: limbs_qp - alpha,
                w_src: w,
                w_dst: w,
            };
            // Mod Up: β independent BConvs, one per digit.
            let modup: Vec<NodeId> = (0..beta)
                .map(|_| push(g, bconv_profile(&geom), KernelClass::Bconv, tag, &[intt_in]))
                .collect();
            let ntt_up = push(
                g,
                ntt::profile(
                    &NttGeom {
                        n,
                        count: bs * beta * limbs_qp,
                        w,
                    },
                    cfg.ntt_alg,
                    cfg.ntt_target,
                ),
                KernelClass::Ntt,
                tag,
                &modup,
            );
            let ipg = IpGeom {
                n,
                batch: bs,
                alpha_p: limbs_qp,
                beta,
                beta_t: 1,
                components: 2,
                w,
            };
            let ip_n = push(g, ip_profile(&ipg, cfg), KernelClass::Ip, tag, &[ntt_up]);
            let intt_groups = if cfg.hybrid_intt_per_digit { beta } else { 1 };
            let intt_out = push(
                g,
                ntt::profile(
                    &NttGeom {
                        n,
                        count: bs * 2 * intt_groups * limbs_qp,
                        w,
                    },
                    cfg.ntt_alg,
                    cfg.ntt_target,
                ),
                KernelClass::Ntt,
                tag,
                &[ip_n],
            );
            vec![intt_out]
        }
        KsMethod::Klss => {
            let kc = p.klss.expect("KLSS cost requires a KLSS configuration");
            let wt = kc.word_size_t;
            let alpha_p = p.alpha_prime();
            let beta_t = p.beta_tilde(level);
            let geom = BconvGeom {
                n,
                batch: bs,
                alpha,
                alpha_out: alpha_p,
                w_src: w,
                w_dst: wt,
            };
            // Mod Up into R_T: β independent BConvs.
            let modup: Vec<NodeId> = (0..beta)
                .map(|_| push(g, bconv_profile(&geom), KernelClass::Bconv, tag, &[intt_in]))
                .collect();
            let ntt_t = push(
                g,
                ntt::profile(
                    &NttGeom {
                        n,
                        count: bs * beta * alpha_p,
                        w: wt,
                    },
                    cfg.ntt_alg,
                    cfg.ntt_target,
                ),
                KernelClass::Ntt,
                tag,
                &modup,
            );
            let ipg = IpGeom {
                n,
                batch: bs,
                alpha_p,
                beta,
                beta_t,
                components: 2,
                w: wt,
            };
            let ip_n = push(g, ip_profile(&ipg, cfg), KernelClass::Ip, tag, &[ntt_t]);
            let intt_t = push(
                g,
                ntt::profile(
                    &NttGeom {
                        n,
                        count: bs * 2 * beta_t * alpha_p,
                        w: wt,
                    },
                    cfg.ntt_alg,
                    cfg.ntt_target,
                ),
                KernelClass::Ntt,
                tag,
                &[ip_n],
            );
            // Recover Limbs: 2β̃ independent BConvs back into R_Q.
            let alpha_tilde = kc.alpha_tilde.min(limbs_qp);
            let rg = BconvGeom {
                n,
                batch: bs,
                alpha: alpha_p,
                alpha_out: alpha_tilde,
                w_src: wt,
                w_dst: w,
            };
            (0..2 * beta_t)
                .map(|_| push(g, bconv_profile(&rg), KernelClass::Bconv, tag, &[intt_t]))
                .collect()
        }
    };
    // Mod Down: two independent BConvs of the special limbs, then the
    // correction arithmetic (a fusable ModMUL → ModADD chain).
    let mdg = BconvGeom {
        n,
        batch: bs,
        alpha: k,
        alpha_out: level + 1,
        w_src: w,
        w_dst: w,
    };
    let md0 = push(g, bconv_profile(&mdg), KernelClass::Bconv, tag, &tails);
    let md1 = push(g, bconv_profile(&mdg), KernelClass::Bconv, tag, &tails);
    let mm = push(
        g,
        elementwise::profile_modmul(&ElemGeom::poly(n, 2 * (level + 1), bs)),
        KernelClass::Elementwise,
        tag,
        &[md0, md1],
    );
    push(
        g,
        elementwise::profile_modadd(&ElemGeom::poly(n, 2 * (level + 1), bs)),
        KernelClass::Elementwise,
        tag,
        &[mm],
    )
}

/// Appends one Rescale running at `level` (sequential INTT → NTT →
/// ModMUL → ModADD chain); returns the exit node.
fn append_rescale(
    g: &mut OpGraph,
    p: &CkksParams,
    level: usize,
    cfg: &CostConfig,
    after: &[NodeId],
    tag: usize,
) -> NodeId {
    let n = p.n();
    let bs = p.batch_size;
    let intt = push(
        g,
        ntt::profile(
            &NttGeom {
                n,
                count: bs * 2,
                w: p.word_size,
            },
            cfg.ntt_alg,
            cfg.ntt_target,
        ),
        KernelClass::Ntt,
        tag,
        after,
    );
    let bcast = push(
        g,
        ntt::profile(
            &NttGeom {
                n,
                count: bs * 2 * level.max(1),
                w: p.word_size,
            },
            cfg.ntt_alg,
            cfg.ntt_target,
        ),
        KernelClass::Ntt,
        tag,
        &[intt],
    );
    let mm = push(
        g,
        elementwise::profile_modmul(&ElemGeom::poly(n, 2 * level.max(1), bs)),
        KernelClass::Elementwise,
        tag,
        &[bcast],
    );
    push(
        g,
        elementwise::profile_modadd(&ElemGeom::poly(n, 2 * level.max(1), bs)),
        KernelClass::Elementwise,
        tag,
        &[mm],
    )
}

/// Appends one batched CKKS operation at `level` to `g`; its first
/// kernel depends on `after`, and the returned node is the operation's
/// exit. Kernel insertion order matches [`crate::cost::op_profiles`].
pub fn append_op(
    g: &mut OpGraph,
    p: &CkksParams,
    level: usize,
    op: Operation,
    cfg: &CostConfig,
    after: &[NodeId],
    tag: usize,
) -> NodeId {
    let n = p.n();
    let bs = p.batch_size;
    let limbs = level + 1;
    match op {
        Operation::HMult => {
            // Tensor product: a fusable ModMUL → ModADD chain.
            let mm = push(
                g,
                elementwise::profile_modmul(&ElemGeom::poly(n, 4 * limbs, bs)),
                KernelClass::Elementwise,
                tag,
                after,
            );
            let ma = push(
                g,
                elementwise::profile_modadd(&ElemGeom::poly(n, 3 * limbs, bs)),
                KernelClass::Elementwise,
                tag,
                &[mm],
            );
            let ks = append_keyswitch(g, p, level, cfg, &[ma], tag);
            push(
                g,
                elementwise::profile_modadd(&ElemGeom::poly(n, 2 * limbs, bs)),
                KernelClass::Elementwise,
                tag,
                &[ks],
            )
        }
        Operation::HRotate => {
            let auto = push(
                g,
                elementwise::profile_auto(&ElemGeom::poly(n, 2 * limbs, bs)),
                KernelClass::Elementwise,
                tag,
                after,
            );
            let ks = append_keyswitch(g, p, level, cfg, &[auto], tag);
            push(
                g,
                elementwise::profile_modadd(&ElemGeom::poly(n, limbs, bs)),
                KernelClass::Elementwise,
                tag,
                &[ks],
            )
        }
        Operation::PMult => push(
            g,
            elementwise::profile_modmul(&ElemGeom::poly(n, 2 * limbs, bs)),
            KernelClass::Elementwise,
            tag,
            after,
        ),
        Operation::HAdd => push(
            g,
            elementwise::profile_modadd(&ElemGeom::poly(n, 2 * limbs, bs)),
            KernelClass::Elementwise,
            tag,
            after,
        ),
        Operation::PAdd => push(
            g,
            elementwise::profile_modadd(&ElemGeom::poly(n, limbs, bs)),
            KernelClass::Elementwise,
            tag,
            after,
        ),
        Operation::Rescale => append_rescale(g, p, level, cfg, after, tag),
        Operation::DoubleRescale => {
            let first = append_rescale(g, p, level, cfg, after, tag);
            append_rescale(g, p, level.saturating_sub(1), cfg, &[first], tag)
        }
    }
}

/// The kernel DAG of one batched CKKS operation at `level`.
pub fn op_graph(p: &CkksParams, level: usize, op: Operation, cfg: &CostConfig) -> OpGraph {
    let mut g = OpGraph::new();
    append_op(&mut g, p, level, op, cfg, &[], 0);
    g
}

/// The kernel DAG of one KeySwitch at `level`.
pub fn keyswitch_graph(p: &CkksParams, level: usize, cfg: &CostConfig) -> OpGraph {
    let mut g = OpGraph::new();
    append_keyswitch(&mut g, p, level, cfg, &[], 0);
    g
}

/// `copies` independent instances of one operation — the kernel DAG of a
/// batch of unrelated ciphertext ops, which is what multi-stream
/// execution overlaps. Instance `i` carries tag `i`.
pub fn batch_op_graph(
    p: &CkksParams,
    level: usize,
    op: Operation,
    cfg: &CostConfig,
    copies: usize,
) -> OpGraph {
    let mut g = OpGraph::new();
    for tag in 0..copies {
        append_op(&mut g, p, level, op, cfg, &[], tag);
    }
    g
}

/// The kernel DAG of a workload trace segment (e.g. a
/// [`crate::bootstrap::BootstrapPlan`] stage): each step contributes
/// `count` parallel operation instances, and every instance of a step
/// depends on all instances of the previous step (the BSGS accumulation
/// barrier).
pub fn trace_graph(p: &CkksParams, steps: &[TraceStep], cfg: &CostConfig) -> OpGraph {
    let mut g = OpGraph::new();
    let mut prev_exits: Vec<NodeId> = Vec::new();
    let mut tag = 0usize;
    for step in steps {
        let exits: Vec<NodeId> = (0..step.count.max(1))
            .map(|_| {
                let exit = append_op(&mut g, p, step.level, step.op, cfg, &prev_exits, tag);
                tag += 1;
                exit
            })
            .collect();
        prev_exits = exits;
    }
    g
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bootstrap::BootstrapPlan;
    use crate::cost::{keyswitch_profiles, op_profiles};
    use crate::params::ParamSet;

    #[test]
    fn graph_profiles_match_cost_sequences() {
        let p = ParamSet::C.params();
        for cfg in [
            CostConfig::neo(),
            CostConfig::tensorfhe(),
            CostConfig::heongpu(),
        ] {
            for op in [
                Operation::HMult,
                Operation::HRotate,
                Operation::PMult,
                Operation::HAdd,
                Operation::PAdd,
                Operation::Rescale,
                Operation::DoubleRescale,
            ] {
                let graph = op_graph(&p, 20, op, &cfg);
                assert_eq!(
                    graph.profiles(),
                    op_profiles(&p, 20, op, &cfg),
                    "{op:?} under {:?}",
                    cfg.method
                );
            }
            let ks = keyswitch_graph(&p, 20, &cfg);
            assert_eq!(ks.profiles(), keyswitch_profiles(&p, 20, &cfg));
        }
    }

    #[test]
    fn keyswitch_graph_has_modup_parallelism() {
        let p = ParamSet::C.params();
        let cfg = CostConfig::neo();
        let g = keyswitch_graph(&p, 35, &cfg);
        // The β Mod Up BConvs all depend on the input INTT only: node 0
        // must have β successors.
        assert_eq!(g.succs(0).len(), p.beta(35));
        // And the graph is sparser than a chain would suggest: some node
        // has more than one predecessor (the Mod Up join).
        assert!((0..g.len()).any(|i| g.preds(i).len() > 1));
    }

    #[test]
    fn hmult_fusion_merges_tensor_product_chain() {
        let p = ParamSet::C.params();
        let cfg = CostConfig::neo();
        let g = op_graph(&p, 35, Operation::HMult, &cfg);
        let (fused, stats) = g.fuse_elementwise();
        // The ModMUL → ModADD prologue and the Mod Down ModMUL → ModADD
        // chain each contract; total work is preserved.
        assert!(stats.nodes_after < stats.nodes_before);
        assert!(stats.launches_after < stats.launches_before);
        assert!(stats.bytes_after < stats.bytes_before);
        let (a, b) = (fused.total_profile(), g.total_profile());
        assert_eq!(a.cuda_modmacs, b.cuda_modmacs);
        assert_eq!(a.tcu_fp64_macs, b.tcu_fp64_macs);
    }

    #[test]
    fn batch_graph_instances_are_independent() {
        let p = ParamSet::C.params();
        let cfg = CostConfig::neo();
        let single = op_graph(&p, 20, Operation::HMult, &cfg);
        let batch = batch_op_graph(&p, 20, Operation::HMult, &cfg, 4);
        assert_eq!(batch.len(), 4 * single.len());
        // No edge crosses instances: edge count is exactly 4× the
        // single-instance edge count.
        assert_eq!(batch.edge_count(), 4 * single.edge_count());
    }

    #[test]
    fn bootstrap_segment_graph_builds() {
        let p = ParamSet::C.params();
        let cfg = CostConfig::neo();
        let plan = BootstrapPlan::try_standard(&p).unwrap();
        let steps = plan.trace();
        // First CTS stage: HRotate×r, PMult×radix, HAdd×radix, Rescale.
        let g = trace_graph(&p, &steps[..4], &cfg);
        assert!(g.len() > steps[0].count);
        assert!(g.edge_count() > g.len() - 1, "barriers add cross edges");
    }
}
