//! Noise/precision diagnostics: measure how many bits of slot precision a
//! ciphertext retains against a known reference — the quantity the paper's
//! precision arguments (WordSize ≥ 36, Double Rescale) are about.

use crate::ciphertext::Ciphertext;
use crate::context::CkksContext;
use crate::encoding::{Complex64, Encoder};
use crate::keys::SecretKey;
use crate::ops;

/// Largest absolute slot error of `ct` against the expected slot values.
///
/// # Panics
///
/// Panics if `expected.len()` exceeds the slot count.
pub fn max_slot_error(
    ctx: &CkksContext,
    enc: &Encoder,
    sk: &SecretKey,
    ct: &Ciphertext,
    expected: &[Complex64],
) -> f64 {
    assert!(expected.len() <= enc.slots());
    let got = enc.decode(ctx, &ops::try_decrypt(ctx, sk, ct).expect("decrypt"));
    expected
        .iter()
        .zip(&got)
        .map(|(w, g)| (*g - *w).abs())
        .fold(0.0, f64::max)
}

/// Remaining precision in bits: `-log2(max slot error)` (clamped at 0 for
/// fully destroyed ciphertexts).
pub fn precision_bits(
    ctx: &CkksContext,
    enc: &Encoder,
    sk: &SecretKey,
    ct: &Ciphertext,
    expected: &[Complex64],
) -> f64 {
    let err = max_slot_error(ctx, enc, sk, ct, expected);
    if err <= 0.0 {
        f64::INFINITY
    } else {
        (-err.log2()).max(0.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::keys::{KeyChest, PublicKey};
    use crate::params::{CkksParams, KsMethod};
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use std::sync::Arc;

    #[test]
    fn precision_degrades_down_a_mult_chain() {
        let ctx = Arc::new(CkksContext::new(CkksParams::test_tiny()).unwrap());
        let mut rng = StdRng::seed_from_u64(21);
        let sk = SecretKey::generate(&ctx, &mut rng);
        let pk = PublicKey::generate(&ctx, &sk, &mut rng);
        let chest = KeyChest::new(ctx.clone(), sk, 22);
        let enc = Encoder::new(ctx.degree());
        let vals: Vec<Complex64> = (0..enc.slots())
            .map(|i| Complex64::new(0.8 + 1e-4 * i as f64, 0.0))
            .collect();
        let pt = enc.encode(&ctx, &vals, ctx.params().scale(), 4);
        let ct = ops::try_encrypt(&ctx, &pk, &pt, &mut rng).unwrap();
        let fresh_bits = precision_bits(&ctx, &enc, chest.secret_key(), &ct, &vals);
        assert!(
            fresh_bits > 20.0,
            "fresh ciphertext too noisy: {fresh_bits:.1} bits"
        );
        // Square twice.
        let mut cur = ct;
        let mut want = vals.clone();
        for _ in 0..2 {
            cur = ops::try_rescale(
                &ctx,
                &ops::try_hmult(&chest, &cur, &cur, KsMethod::Klss).unwrap(),
            )
            .unwrap();
            want = want.iter().map(|v| *v * *v).collect();
        }
        let deep_bits = precision_bits(&ctx, &enc, chest.secret_key(), &cur, &want);
        assert!(
            deep_bits > 8.0,
            "depth-2 result unusable: {deep_bits:.1} bits"
        );
        assert!(deep_bits < fresh_bits, "noise must grow with depth");
    }

    #[test]
    fn exact_match_reports_infinite_precision() {
        // A contrived zero-error comparison hits the guard path.
        let ctx = Arc::new(CkksContext::new(CkksParams::test_tiny()).unwrap());
        let mut rng = StdRng::seed_from_u64(23);
        let sk = SecretKey::generate(&ctx, &mut rng);
        let pk = PublicKey::generate(&ctx, &sk, &mut rng);
        let enc = Encoder::new(ctx.degree());
        let vals = vec![Complex64::new(0.5, 0.0); 4];
        let pt = enc.encode(&ctx, &vals, ctx.params().scale(), 2);
        let ct = ops::try_encrypt(&ctx, &pk, &pt, &mut rng).unwrap();
        // Compare against its own decryption: error exactly zero.
        let own = enc.decode(&ctx, &ops::try_decrypt(&ctx, &sk, &ct).unwrap());
        let bits = precision_bits(&ctx, &enc, &sk, &ct, &own);
        assert!(bits.is_infinite());
    }
}
