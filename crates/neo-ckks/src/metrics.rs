//! `neo-metrics` integration for the CKKS layer.
//!
//! Two histogram families cover the questions a serving layer asks of the
//! engine, labeled by op kind (`hmult`/`hadd`/`hrotate`/`rescale`):
//!
//! * `fhe_op_latency_ns{op}` — wall-clock per successful primitive;
//! * `fhe_noise_consumed_bits{op}` — noise-budget bits the op consumed
//!   (the drop from the weakest operand's budget to the result's, via
//!   [`crate::ops::noise_budget_bits`]).
//!
//! Batch execution additionally bumps `fhe_batch_*` counters from the
//! [`crate::batch::BatchReport`] recovery accounting. Everything follows
//! the gate discipline: [`ObserveOp::start`] returns `None` (one relaxed
//! load, no clock read) while [`neo_metrics::enabled`] is off.

use crate::batch::BatchReport;
use crate::ciphertext::Ciphertext;
use crate::context::CkksContext;
use crate::ops::noise_budget_bits;
use neo_metrics::{CounterHandle, Histogram};
use std::sync::{Arc, LazyLock};
use std::time::Instant;

/// The instrumented op kinds, indexing [`KIND_NAMES`] and the histogram
/// arrays.
#[derive(Debug, Clone, Copy)]
pub(crate) enum OpKind {
    HMult = 0,
    HAdd = 1,
    HRotate = 2,
    Rescale = 3,
}

/// Label values, in [`OpKind`] discriminant order.
pub(crate) const KIND_NAMES: [&str; 4] = ["hmult", "hadd", "hrotate", "rescale"];

fn hists(name: &str) -> [Arc<Histogram>; 4] {
    KIND_NAMES.map(|k| neo_metrics::histogram(name, &[("op", k)]))
}

static LATENCY: LazyLock<[Arc<Histogram>; 4]> = LazyLock::new(|| hists("fhe_op_latency_ns"));
static NOISE: LazyLock<[Arc<Histogram>; 4]> = LazyLock::new(|| hists("fhe_noise_consumed_bits"));

static BATCH_OPS: LazyLock<Arc<CounterHandle>> =
    LazyLock::new(|| neo_metrics::counter("fhe_batch_ops_total", &[]));
static BATCH_FAILED: LazyLock<Arc<CounterHandle>> =
    LazyLock::new(|| neo_metrics::counter("fhe_batch_op_failures_total", &[]));
static BATCH_RETRIES: LazyLock<Arc<CounterHandle>> =
    LazyLock::new(|| neo_metrics::counter("fhe_batch_retries_total", &[]));
static BATCH_RECOVERED: LazyLock<Arc<CounterHandle>> =
    LazyLock::new(|| neo_metrics::counter("fhe_batch_faults_recovered_total", &[]));
static BATCH_QUARANTINED: LazyLock<Arc<CounterHandle>> =
    LazyLock::new(|| neo_metrics::counter("fhe_batch_plans_quarantined_total", &[]));

/// An in-flight observation of one CKKS primitive: latency clock plus the
/// weakest operand's noise budget, captured before the op runs.
pub(crate) struct ObserveOp {
    kind: usize,
    t0: Instant,
    in_budget: f64,
}

impl ObserveOp {
    /// Starts an observation, or `None` (no clock read) while metrics are
    /// disabled.
    pub(crate) fn start(kind: OpKind, ctx: &CkksContext, operands: &[&Ciphertext]) -> Option<Self> {
        if !neo_metrics::enabled() {
            return None;
        }
        let in_budget = operands
            .iter()
            .map(|ct| noise_budget_bits(ctx, ct))
            .fold(f64::INFINITY, f64::min);
        Some(Self {
            kind: kind as usize,
            t0: Instant::now(),
            in_budget,
        })
    }

    /// Records the op's latency and noise consumption against `out`.
    pub(crate) fn success(self, ctx: &CkksContext, out: &Ciphertext) {
        LATENCY[self.kind].record_ns(self.t0.elapsed().as_nanos() as u64);
        let consumed = (self.in_budget - noise_budget_bits(ctx, out)).max(0.0);
        NOISE[self.kind].record(consumed.round() as u64);
    }
}

/// Folds a batch execution's recovery accounting into the `fhe_batch_*`
/// counters and refreshes the NTT plan-cache gauges. A no-op while
/// metrics are disabled.
pub(crate) fn record_batch_report(report: &BatchReport) {
    if !neo_metrics::enabled() {
        return;
    }
    BATCH_OPS.add(report.results.len() as u64);
    BATCH_FAILED.add(report.results.iter().filter(|r| r.is_err()).count() as u64);
    BATCH_RETRIES.add(u64::from(report.total_retries()));
    BATCH_RECOVERED.add(u64::from(report.total_recovered()));
    BATCH_QUARANTINED.add(report.plans_quarantined);
    neo_ntt::metrics::publish_cache_metrics();
}
