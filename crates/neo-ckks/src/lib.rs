//! RNS-CKKS for the Neo reproduction: encoding, key generation, the
//! primitive homomorphic operations, and both key-switching methods the
//! paper contrasts (Hybrid and KLSS), plus the cost models that drive the
//! paper's tables and figures.
//!
//! # Quick start
//!
//! The [`FheEngine`] session facade is the preferred entry point: it
//! bundles context, keys and encoder, every operation returns
//! [`Result<_, NeoError>`], and an [`OpPolicy`] applies runtime
//! guardrails (level alignment, noise-budget floor, warm-key checks).
//!
//! ```rust
//! use neo_ckks::{CkksParams, FheEngine, NeoError};
//!
//! # fn main() -> Result<(), NeoError> {
//! let engine = FheEngine::new(CkksParams::test_tiny(), 1)?;
//! let ct = engine.encrypt_f64(&[1.5, -2.0], 3)?;
//! let sq = engine.rescale(&engine.hmult(&ct, &ct)?)?; // square it
//! let out = engine.decrypt_f64(&sq)?;
//! assert!((out[0] - 2.25).abs() < 1e-2);
//! # Ok(())
//! # }
//! ```
//!
//! The free functions in [`ops`] are available in fallible `try_*` form
//! (the original panicking names were removed after their one-release
//! migration window). Performance knobs — key-switching method, fusion,
//! stream count, verify policy, backend — travel as a typed
//! [`ExecPlan`] installed via [`FheEngine::with_plan`]; the `neo-plan`
//! crate's autotuner produces one by sweeping the knob space through the
//! `neo-sched` simulator.

// Library code must surface failures as typed `NeoError`s, never by
// unwrapping; tests may unwrap freely.
#![cfg_attr(not(test), deny(clippy::unwrap_used))]

pub mod batch;
pub mod bootstrap;
pub mod ciphertext;
pub mod complexity;
pub mod context;
pub mod cost;
pub mod encoding;
pub mod engine;
pub mod keys;
pub mod keyswitch;
pub mod linear;
pub(crate) mod metrics;
pub mod noise;
pub mod ops;
pub mod params;
pub mod plan;
pub mod sched;

pub use batch::{BatchOp, BatchProgram, BatchReport, Slot, DEFAULT_MAX_RETRIES};
pub use ciphertext::{Ciphertext, Plaintext};
pub use context::CkksContext;
pub use encoding::Encoder;
pub use engine::{FheEngine, OpPolicy};
pub use keys::{KeyChest, KeyTarget, PublicKey, SecretKey};
pub use linear::LinearTransform;
pub use neo_error::{ErrorKind, NeoError};
pub use neo_fault::VerifyPolicy;
pub use neo_math::BackendKind;
pub use params::{CkksParams, CkksParamsBuilder, KlssConfig, KsMethod, ParamSet};
pub use plan::ExecPlan;
