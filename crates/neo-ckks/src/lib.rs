//! RNS-CKKS for the Neo reproduction: encoding, key generation, the
//! primitive homomorphic operations, and both key-switching methods the
//! paper contrasts (Hybrid and KLSS), plus the cost models that drive the
//! paper's tables and figures.
//!
//! # Quick start
//!
//! ```rust
//! use neo_ckks::{CkksContext, CkksParams, Encoder, KeyChest, KsMethod};
//! use neo_ckks::encoding::Complex64;
//! use neo_ckks::keys::{PublicKey, SecretKey};
//! use neo_ckks::ops;
//! use rand::{rngs::StdRng, SeedableRng};
//! use std::sync::Arc;
//!
//! # fn main() -> Result<(), neo_math::MathError> {
//! let ctx = Arc::new(CkksContext::new(CkksParams::test_tiny())?);
//! let mut rng = StdRng::seed_from_u64(1);
//! let sk = SecretKey::generate(&ctx, &mut rng);
//! let pk = PublicKey::generate(&ctx, &sk, &mut rng);
//! let chest = KeyChest::new(ctx.clone(), sk, 2);
//! let enc = Encoder::new(ctx.degree());
//!
//! let vals = vec![Complex64::new(1.5, 0.0), Complex64::new(-2.0, 0.25)];
//! let pt = enc.encode(&ctx, &vals, ctx.params().scale(), 3);
//! let ct = ops::encrypt(&ctx, &pk, &pt, &mut rng);
//! let ct2 = ops::hmult(&chest, &ct, &ct, KsMethod::Klss); // square it
//! let ct2 = ops::rescale(&ctx, &ct2);
//! let out = enc.decode(&ctx, &ops::decrypt(&ctx, chest.secret_key(), &ct2));
//! assert!((out[0].re - 2.25).abs() < 1e-2);
//! # Ok(())
//! # }
//! ```

pub mod batch;
pub mod bootstrap;
pub mod ciphertext;
pub mod complexity;
pub mod context;
pub mod cost;
pub mod encoding;
pub mod keys;
pub mod keyswitch;
pub mod linear;
pub mod noise;
pub mod ops;
pub mod params;
pub mod sched;

pub use ciphertext::{Ciphertext, Plaintext};
pub use context::CkksContext;
pub use encoding::Encoder;
pub use keys::{KeyChest, KeyTarget, PublicKey, SecretKey};
pub use params::{CkksParams, KlssConfig, KsMethod, ParamSet};
