//! [`FheEngine`] — a session-style facade over the CKKS stack.
//!
//! The engine bundles the pieces a caller otherwise wires by hand
//! ([`CkksContext`], [`KeyChest`], [`Encoder`], a key-switching method)
//! behind one object whose every operation returns
//! [`Result<_, NeoError>`], and applies an [`OpPolicy`] of runtime
//! guardrails: automatic level alignment, optional automatic rescaling
//! after multiplications, a noise-budget floor below which operations are
//! refused with a structured error, and an optional requirement that
//! key-switching keys be pre-warmed.

use crate::batch::BatchProgram;
use crate::ciphertext::{Ciphertext, Plaintext};
use crate::context::CkksContext;
use crate::encoding::{Complex64, Encoder};
use crate::keys::{describe_target, KeyChest, KeyTarget, PublicKey, SecretKey};
use crate::linear::LinearTransform;
use crate::params::{CkksParams, KsMethod};
use crate::plan::ExecPlan;
use crate::{linear, ops};
use neo_error::NeoError;
use neo_fault::{VerifyPolicy, VerifyScope};
use parking_lot::Mutex;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::Arc;

/// Runtime guardrails applied by [`FheEngine`] before each operation.
#[derive(Debug, Clone, Copy)]
pub struct OpPolicy {
    /// Rescale automatically after scale-growing multiplications
    /// (`hmult`, `pmult`), keeping working scale near Δ.
    pub auto_rescale: bool,
    /// When binary operands sit at different levels, level-reduce the
    /// higher one instead of returning [`NeoError::LevelMismatch`].
    pub auto_align_levels: bool,
    /// Refuse any scale-growing operation whose *result* would have less
    /// than this many bits of noise budget, with
    /// [`NeoError::NoiseBudgetExhausted`].
    pub min_noise_budget_bits: f64,
    /// Refuse key-switching operations whose key is not already cached in
    /// the chest (instead of generating it on demand), with
    /// [`NeoError::KeySwitchKeyMissing`]. Useful to catch missed warm-up
    /// in latency-sensitive paths.
    pub require_warm_keys: bool,
    /// ABFT verification of NTT kernel outputs inside this engine's
    /// operations: [`VerifyPolicy::Off`] (default, zero overhead),
    /// `Sampled(n)` (one transform in `n` is spot-checked), or `Always`.
    /// A failed check surfaces as [`NeoError::FaultDetected`] instead of
    /// a silently wrong ciphertext; the checks' FLOP/byte overhead is
    /// tallied under the `abft_*` work counters.
    pub verify: VerifyPolicy,
}

impl Default for OpPolicy {
    fn default() -> Self {
        Self {
            auto_rescale: false,
            auto_align_levels: true,
            min_noise_budget_bits: 0.0,
            require_warm_keys: false,
            verify: VerifyPolicy::Off,
        }
    }
}

/// A CKKS session: context + keys + encoder + policy, with a fallible API.
///
/// ```
/// use neo_ckks::{CkksParams, FheEngine};
///
/// let engine = FheEngine::new(CkksParams::test_tiny(), 7)?;
/// let xs = vec![1.5, -0.25, 3.0];
/// let ct_a = engine.encrypt_f64(&xs, engine.max_level())?;
/// let ct_b = engine.encrypt_f64(&xs, engine.max_level())?;
/// let sum = engine.hadd(&ct_a, &ct_b)?;
/// let out = engine.decrypt_f64(&sum)?;
/// assert!((out[0] - 3.0).abs() < 1e-3);
/// # Ok::<(), neo_ckks::NeoError>(())
/// ```
pub struct FheEngine {
    chest: KeyChest,
    encoder: Encoder,
    pk: PublicKey,
    method: KsMethod,
    policy: OpPolicy,
    plan: Option<ExecPlan>,
    rng: Mutex<StdRng>,
}

impl FheEngine {
    /// Builds a full session from parameters: context, secret/public keys,
    /// key chest and encoder, all seeded deterministically from `seed`.
    ///
    /// # Errors
    ///
    /// [`NeoError::Math`] if the parameters fail validation or prime
    /// generation.
    pub fn new(params: CkksParams, seed: u64) -> Result<Self, NeoError> {
        let ctx = Arc::new(CkksContext::new(params)?);
        Ok(Self::with_context(ctx, seed))
    }

    /// Builds a session over an *existing* context: fresh secret/public
    /// keys and key chest seeded from `seed`, but the (expensive) context
    /// — prime chains, NTT plans, BConv tables — shared with every other
    /// session built from the same `Arc`. This is the multi-tenant seam:
    /// a serving layer gives each tenant its own keys and policy while
    /// thousands of tenants share one parameter set's tables.
    pub fn with_context(ctx: Arc<CkksContext>, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let sk = SecretKey::generate(&ctx, &mut rng);
        let pk = PublicKey::generate(&ctx, &sk, &mut rng);
        let encoder = Encoder::new(ctx.degree());
        let method = if ctx.params().klss.is_some() {
            KsMethod::Klss
        } else {
            KsMethod::Hybrid
        };
        let chest = KeyChest::new(ctx, sk, seed.wrapping_mul(0x9e37_79b9).wrapping_add(1));
        Self {
            chest,
            encoder,
            pk,
            method,
            policy: OpPolicy::default(),
            plan: None,
            rng: Mutex::new(rng),
        }
    }

    /// Builds a session over an existing context from a *rehydrated*
    /// secret key — the warm-start seam for a persistent store. Given the
    /// same `seed` the original session was built with, the derived
    /// public key and every key-switching key are bit-identical to that
    /// session's, so ciphertexts and seed-compressed KSK records written
    /// before a restart remain valid after it.
    pub fn with_secret_key(ctx: Arc<CkksContext>, sk: SecretKey, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        // Burn the draws `with_context` spends sampling the secret key, so
        // the public key (and everything after) replays bit-exactly.
        let _ = ctx.sample_ternary(&mut rng);
        let pk = PublicKey::generate(&ctx, &sk, &mut rng);
        let encoder = Encoder::new(ctx.degree());
        let method = if ctx.params().klss.is_some() {
            KsMethod::Klss
        } else {
            KsMethod::Hybrid
        };
        let chest = KeyChest::new(ctx, sk, seed.wrapping_mul(0x9e37_79b9).wrapping_add(1));
        Self {
            chest,
            encoder,
            pk,
            method,
            policy: OpPolicy::default(),
            plan: None,
            rng: Mutex::new(rng),
        }
    }

    /// Pre-generates every key-switching key `prog` will need at
    /// `input_level`, in deterministic issue order (see
    /// [`BatchProgram::warm_keys`]) — the warm-up a serving layer runs at
    /// admission time so execution never generates keys mid-batch.
    ///
    /// # Errors
    ///
    /// [`NeoError::KeySwitchKeyMissing`] if a key cannot be generated.
    pub fn warm_program(&self, prog: &BatchProgram, input_level: usize) -> Result<(), NeoError> {
        prog.warm_keys(&self.chest, input_level, self.method)
    }

    /// Installs an execution plan: the session adopts the plan's
    /// key-switching method and verify policy, and
    /// [`Self::execute_batch_planned`] honors its stream choice. The
    /// single planned entry point replacing the removed per-knob setters
    /// (the 0.3.0-deprecated `with_method`, manual `OpPolicy.verify`
    /// edits, ad-hoc parallelism flags).
    ///
    /// # Errors
    ///
    /// [`NeoError::ParameterMismatch`] if the plan was tuned on a
    /// different compute backend than this session runs on — a cached
    /// plan only replays on the backend it was priced for.
    pub fn with_plan(mut self, plan: &ExecPlan) -> Result<Self, NeoError> {
        let backend = self.backend();
        if plan.backend != backend {
            return Err(NeoError::parameter_mismatch(
                "with_plan",
                format!(
                    "plan was tuned on the {} backend but this session runs {}",
                    plan.backend.name(),
                    backend.name()
                ),
            ));
        }
        self.method = plan.method;
        self.policy.verify = plan.verify;
        self.plan = Some(*plan);
        Ok(self)
    }

    /// The installed execution plan, if any.
    pub fn plan(&self) -> Option<&ExecPlan> {
        self.plan.as_ref()
    }

    /// Overrides the guardrail policy.
    pub fn with_policy(mut self, policy: OpPolicy) -> Self {
        self.policy = policy;
        self
    }

    /// The underlying context.
    pub fn context(&self) -> &Arc<CkksContext> {
        self.chest.context()
    }

    /// The compute backend every hot path of this session dispatches to,
    /// fixed at build time via
    /// [`CkksParamsBuilder::backend`](crate::CkksParamsBuilder::backend)
    /// (or [`BackendKind::detect`](neo_math::BackendKind::detect) by
    /// default).
    pub fn backend(&self) -> neo_math::BackendKind {
        self.context().params().backend
    }

    /// The key chest (exposed for warm-up and the batch executor).
    pub fn chest(&self) -> &KeyChest {
        &self.chest
    }

    /// The slot encoder.
    pub fn encoder(&self) -> &Encoder {
        &self.encoder
    }

    /// The active key-switching method.
    pub fn method(&self) -> KsMethod {
        self.method
    }

    /// The active guardrail policy.
    pub fn policy(&self) -> OpPolicy {
        self.policy
    }

    /// Replaces the guardrail policy in place.
    pub fn set_policy(&mut self, policy: OpPolicy) {
        self.policy = policy;
    }

    /// Top of the modulus chain.
    pub fn max_level(&self) -> usize {
        self.context().params().max_level
    }

    /// The default working scale Δ = 2^scale_bits.
    pub fn default_scale(&self) -> f64 {
        (2.0f64).powi(self.context().params().scale_bits as i32)
    }

    /// Slot count (`N/2`).
    pub fn slots(&self) -> usize {
        self.encoder.slots()
    }

    /// Remaining noise budget of `ct` in bits (no secret key required).
    pub fn noise_budget_bits(&self, ct: &Ciphertext) -> f64 {
        ops::noise_budget_bits(self.context(), ct)
    }

    // --- Encoding / encryption ---

    /// Encodes complex slots at `level` with the default scale.
    ///
    /// # Errors
    ///
    /// [`NeoError::InvalidParams`] if more than [`Self::slots`] values are
    /// supplied; [`NeoError::ParameterMismatch`] if `level` is outside the
    /// chain.
    pub fn encode(&self, values: &[Complex64], level: usize) -> Result<Plaintext, NeoError> {
        self.check_level("encode", level)?;
        if values.len() > self.slots() {
            return Err(NeoError::invalid_params(format!(
                "{} values exceed the {} available slots",
                values.len(),
                self.slots()
            )));
        }
        Ok(self
            .encoder
            .encode(self.context(), values, self.default_scale(), level))
    }

    /// Encodes real values at `level` with the default scale.
    ///
    /// # Errors
    ///
    /// As [`Self::encode`].
    pub fn encode_f64(&self, values: &[f64], level: usize) -> Result<Plaintext, NeoError> {
        let vals: Vec<Complex64> = values.iter().map(|&x| Complex64::new(x, 0.0)).collect();
        self.encode(&vals, level)
    }

    /// Decodes a plaintext back into complex slots.
    ///
    /// # Errors
    ///
    /// [`NeoError::ParameterMismatch`] if the plaintext is in NTT domain
    /// or its level is outside the chain.
    pub fn decode(&self, pt: &Plaintext) -> Result<Vec<Complex64>, NeoError> {
        self.check_level("decode", pt.level())?;
        if pt.poly().domain() != neo_math::Domain::Coeff {
            return Err(NeoError::parameter_mismatch(
                "decode",
                "plaintext must be in coefficient domain",
            ));
        }
        Ok(self.encoder.decode(self.context(), pt))
    }

    /// Encrypts a plaintext under the session public key.
    ///
    /// # Errors
    ///
    /// [`NeoError::ParameterMismatch`] if the plaintext's level is outside
    /// the chain.
    pub fn encrypt(&self, pt: &Plaintext) -> Result<Ciphertext, NeoError> {
        let _v = VerifyScope::enter(self.policy.verify);
        let mut rng = self.rng.lock();
        ops::try_encrypt(self.context(), &self.pk, pt, &mut *rng)
    }

    /// Encodes and encrypts complex slots at `level`.
    ///
    /// # Errors
    ///
    /// As [`Self::encode`] and [`Self::encrypt`].
    pub fn encrypt_values(
        &self,
        values: &[Complex64],
        level: usize,
    ) -> Result<Ciphertext, NeoError> {
        let pt = self.encode(values, level)?;
        self.encrypt(&pt)
    }

    /// Encodes and encrypts real values at `level`.
    ///
    /// # Errors
    ///
    /// As [`Self::encode`] and [`Self::encrypt`].
    pub fn encrypt_f64(&self, values: &[f64], level: usize) -> Result<Ciphertext, NeoError> {
        let pt = self.encode_f64(values, level)?;
        self.encrypt(&pt)
    }

    /// Decrypts with the session secret key.
    ///
    /// # Errors
    ///
    /// [`NeoError::ParameterMismatch`] if the ciphertext's level is
    /// outside the chain.
    pub fn decrypt(&self, ct: &Ciphertext) -> Result<Plaintext, NeoError> {
        let _v = VerifyScope::enter(self.policy.verify);
        ops::try_decrypt(self.context(), self.chest.secret_key(), ct)
    }

    /// Decrypts and decodes into complex slots.
    ///
    /// # Errors
    ///
    /// As [`Self::decrypt`] and [`Self::decode`].
    pub fn decrypt_values(&self, ct: &Ciphertext) -> Result<Vec<Complex64>, NeoError> {
        let pt = self.decrypt(ct)?;
        self.decode(&pt)
    }

    /// Decrypts and decodes the real parts of all slots.
    ///
    /// # Errors
    ///
    /// As [`Self::decrypt`] and [`Self::decode`].
    pub fn decrypt_f64(&self, ct: &Ciphertext) -> Result<Vec<f64>, NeoError> {
        Ok(self.decrypt_values(ct)?.iter().map(|v| v.re).collect())
    }

    // --- Homomorphic operations ---

    /// HADD, aligning levels first if the policy allows.
    ///
    /// # Errors
    ///
    /// [`NeoError::LevelMismatch`] (alignment disabled) or
    /// [`NeoError::ScaleMismatch`].
    pub fn hadd(&self, a: &Ciphertext, b: &Ciphertext) -> Result<Ciphertext, NeoError> {
        let (a, b) = self.align_pair("hadd", a, b)?;
        ops::try_hadd(self.context(), &a, &b)
    }

    /// HSUB, aligning levels first if the policy allows.
    ///
    /// # Errors
    ///
    /// [`NeoError::LevelMismatch`] (alignment disabled) or
    /// [`NeoError::ScaleMismatch`].
    pub fn hsub(&self, a: &Ciphertext, b: &Ciphertext) -> Result<Ciphertext, NeoError> {
        let (a, b) = self.align_pair("hsub", a, b)?;
        ops::try_hsub(self.context(), &a, &b)
    }

    /// PADD: ciphertext + plaintext.
    ///
    /// # Errors
    ///
    /// [`NeoError::LevelMismatch`] / [`NeoError::ScaleMismatch`].
    pub fn padd(&self, a: &Ciphertext, pt: &Plaintext) -> Result<Ciphertext, NeoError> {
        ops::try_padd(self.context(), a, pt)
    }

    /// PMULT with the noise-budget guardrail, auto-rescaling afterwards if
    /// the policy asks for it.
    ///
    /// # Errors
    ///
    /// [`NeoError::LevelMismatch`], [`NeoError::NoiseBudgetExhausted`], or
    /// (with auto-rescale at level 0) [`NeoError::ModulusChainExhausted`].
    pub fn pmult(&self, a: &Ciphertext, pt: &Plaintext) -> Result<Ciphertext, NeoError> {
        let _v = VerifyScope::enter(self.policy.verify);
        self.guard_budget("pmult", a.level(), a.scale() * pt.scale())?;
        let out = ops::try_pmult(self.context(), a, pt)?;
        self.maybe_rescale(out)
    }

    /// HMULT (with relinearization) under the session's key-switching
    /// method, with the noise-budget guardrail, auto-rescaling afterwards
    /// if the policy asks for it.
    ///
    /// # Errors
    ///
    /// [`NeoError::LevelMismatch`] (alignment disabled),
    /// [`NeoError::NoiseBudgetExhausted`],
    /// [`NeoError::KeySwitchKeyMissing`], or (with auto-rescale at
    /// level 0) [`NeoError::ModulusChainExhausted`].
    pub fn hmult(&self, a: &Ciphertext, b: &Ciphertext) -> Result<Ciphertext, NeoError> {
        let _v = VerifyScope::enter(self.policy.verify);
        let (a, b) = self.align_pair("hmult", a, b)?;
        self.guard_budget("hmult", a.level(), a.scale() * b.scale())?;
        self.guard_warm(a.level(), KeyTarget::Relin)?;
        let out = ops::try_hmult(&self.chest, &a, &b, self.method)?;
        self.maybe_rescale(out)
    }

    /// HROTATE by `steps` slots.
    ///
    /// # Errors
    ///
    /// [`NeoError::KeySwitchKeyMissing`] if the Galois key is unavailable
    /// (or, under `require_warm_keys`, not pre-warmed).
    pub fn hrotate(&self, a: &Ciphertext, steps: usize) -> Result<Ciphertext, NeoError> {
        let _v = VerifyScope::enter(self.policy.verify);
        let g = ops::galois_element(self.context().degree(), steps);
        self.guard_warm(a.level(), KeyTarget::Galois(g))?;
        ops::try_hrotate(&self.chest, a, steps, self.method)
    }

    /// Complex conjugation of all slots.
    ///
    /// # Errors
    ///
    /// [`NeoError::KeySwitchKeyMissing`] if the conjugation key is
    /// unavailable (or, under `require_warm_keys`, not pre-warmed).
    pub fn hconjugate(&self, a: &Ciphertext) -> Result<Ciphertext, NeoError> {
        let _v = VerifyScope::enter(self.policy.verify);
        let g = 2 * self.context().degree() - 1;
        self.guard_warm(a.level(), KeyTarget::Galois(g))?;
        ops::try_hconjugate(&self.chest, a, self.method)
    }

    /// Rescale by the last chain prime.
    ///
    /// # Errors
    ///
    /// [`NeoError::ModulusChainExhausted`] at level 0.
    pub fn rescale(&self, ct: &Ciphertext) -> Result<Ciphertext, NeoError> {
        ops::try_rescale(self.context(), ct)
    }

    /// Two consecutive rescales.
    ///
    /// # Errors
    ///
    /// [`NeoError::ModulusChainExhausted`] below level 2.
    pub fn double_rescale(&self, ct: &Ciphertext) -> Result<Ciphertext, NeoError> {
        ops::try_double_rescale(self.context(), ct)
    }

    /// Drops limbs to bring `ct` down to `level`.
    ///
    /// # Errors
    ///
    /// [`NeoError::ParameterMismatch`] on a raise attempt.
    pub fn level_reduce(&self, ct: &Ciphertext, level: usize) -> Result<Ciphertext, NeoError> {
        ops::try_level_reduce(ct, level)
    }

    // --- Higher-level helpers ---

    /// Applies a linear transform (diagonal method).
    ///
    /// # Errors
    ///
    /// Propagates the underlying rotation / multiply / rescale errors.
    pub fn apply_transform(
        &self,
        lt: &LinearTransform,
        ct: &Ciphertext,
    ) -> Result<Ciphertext, NeoError> {
        let _v = VerifyScope::enter(self.policy.verify);
        lt.try_apply(&self.chest, &self.encoder, ct, self.method)
    }

    /// Applies a linear transform with baby-step/giant-step rotations
    /// (baby-step size ≈ √D for D diagonals).
    ///
    /// # Errors
    ///
    /// Propagates the underlying rotation / multiply / rescale errors.
    pub fn apply_transform_bsgs(
        &self,
        lt: &LinearTransform,
        ct: &Ciphertext,
    ) -> Result<Ciphertext, NeoError> {
        let _v = VerifyScope::enter(self.policy.verify);
        let baby = ((lt.diagonal_count() as f64).sqrt().ceil() as usize).max(1);
        lt.try_apply_bsgs(&self.chest, &self.encoder, ct, baby, self.method)
    }

    /// Evaluates a polynomial (Horner) on a ciphertext.
    ///
    /// # Errors
    ///
    /// [`NeoError::ModulusChainExhausted`] if the chain is too short for
    /// the polynomial's degree, plus the underlying op errors.
    pub fn eval_polynomial(&self, ct: &Ciphertext, coeffs: &[f64]) -> Result<Ciphertext, NeoError> {
        let _v = VerifyScope::enter(self.policy.verify);
        linear::try_eval_polynomial(&self.chest, &self.encoder, ct, coeffs, self.method)
    }

    /// Runs a batch program through the multi-stream executor with per-op
    /// error isolation: the outer `Result` covers program-wide failures,
    /// the inner per-op `Result`s isolate individual op failures (ops
    /// downstream of a failed op report [`NeoError::PoisonedInput`]).
    ///
    /// # Errors
    ///
    /// See [`BatchProgram::execute`].
    pub fn execute_batch(
        &self,
        prog: &BatchProgram,
        inputs: &[Ciphertext],
        parallel: bool,
    ) -> Result<Vec<Result<Ciphertext, NeoError>>, NeoError> {
        let _v = VerifyScope::enter(self.policy.verify);
        prog.execute(&self.chest, inputs, self.method, parallel)
    }

    /// Runs a batch program under the installed [`ExecPlan`]: the
    /// plan's method and verify policy are already active on the
    /// session, and its stream choice decides serial vs parallel
    /// execution. Outputs are bit-identical to
    /// [`Self::execute_batch`] under the same key-switching method —
    /// fusion, streams and verify are timing-side knobs.
    ///
    /// # Errors
    ///
    /// [`NeoError::InvalidParams`] if no plan is installed; otherwise
    /// as [`Self::execute_batch`].
    pub fn execute_batch_planned(
        &self,
        prog: &BatchProgram,
        inputs: &[Ciphertext],
    ) -> Result<Vec<Result<Ciphertext, NeoError>>, NeoError> {
        let plan = self.plan.as_ref().ok_or_else(|| {
            NeoError::invalid_params(
                "execute_batch_planned requires a plan — install one with FheEngine::with_plan",
            )
        })?;
        self.execute_batch(prog, inputs, plan.parallel())
    }

    /// [`Self::execute_batch`] with explicit retry control and recovery
    /// accounting ([`crate::batch::BatchReport`]).
    ///
    /// # Errors
    ///
    /// See [`BatchProgram::execute_with_report`].
    pub fn execute_batch_with_report(
        &self,
        prog: &BatchProgram,
        inputs: &[Ciphertext],
        parallel: bool,
        max_retries: u32,
    ) -> Result<crate::batch::BatchReport, NeoError> {
        let _v = VerifyScope::enter(self.policy.verify);
        prog.execute_with_report(&self.chest, inputs, self.method, parallel, max_retries)
    }

    // --- Guardrails ---

    fn check_level(&self, op: &'static str, level: usize) -> Result<(), NeoError> {
        let max = self.max_level();
        if level > max {
            return Err(NeoError::parameter_mismatch(
                op,
                format!("level {level} exceeds the chain's max level {max}"),
            ));
        }
        Ok(())
    }

    /// Level alignment for binary ops: reduce the higher operand when the
    /// policy allows, error otherwise.
    fn align_pair(
        &self,
        op: &'static str,
        a: &Ciphertext,
        b: &Ciphertext,
    ) -> Result<(Ciphertext, Ciphertext), NeoError> {
        if a.level() == b.level() {
            return Ok((a.clone(), b.clone()));
        }
        if !self.policy.auto_align_levels {
            return Err(NeoError::level_mismatch(op, a.level(), b.level()));
        }
        let level = a.level().min(b.level());
        Ok((
            ops::try_level_reduce(a, level)?,
            ops::try_level_reduce(b, level)?,
        ))
    }

    /// Refuses a scale-growing op whose result would fall below the
    /// policy's noise-budget floor.
    fn guard_budget(
        &self,
        op: &'static str,
        level: usize,
        result_scale: f64,
    ) -> Result<(), NeoError> {
        let floor = self.policy.min_noise_budget_bits;
        let total: f64 = self
            .context()
            .q_moduli(level.min(self.max_level()))
            .iter()
            .map(|m| (m.value() as f64).log2())
            .sum();
        let budget = total - result_scale.log2();
        if budget < floor {
            return Err(NeoError::noise_exhausted(op, budget, floor));
        }
        Ok(())
    }

    /// Under `require_warm_keys`, refuses key switches whose key is not
    /// already cached.
    fn guard_warm(&self, level: usize, target: KeyTarget) -> Result<(), NeoError> {
        if self.policy.require_warm_keys && !self.chest.has_key(level, target, self.method) {
            return Err(NeoError::key_missing(
                level,
                describe_target(target),
                "policy requires pre-warmed keys (call KeyChest::warm first)",
            ));
        }
        Ok(())
    }

    fn maybe_rescale(&self, ct: Ciphertext) -> Result<Ciphertext, NeoError> {
        if self.policy.auto_rescale {
            self.rescale(&ct)
        } else {
            Ok(ct)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use neo_error::ErrorKind;

    fn engine() -> FheEngine {
        FheEngine::new(CkksParams::test_tiny(), 42).unwrap()
    }

    #[test]
    fn roundtrip_through_engine() {
        let e = engine();
        let xs = vec![1.0, -2.5, 0.75, 3.25];
        let ct = e.encrypt_f64(&xs, e.max_level()).unwrap();
        let out = e.decrypt_f64(&ct).unwrap();
        for (x, y) in xs.iter().zip(&out) {
            assert!((x - y).abs() < 1e-3, "{x} vs {y}");
        }
    }

    #[test]
    fn hmult_then_rescale_keeps_product() {
        let e = engine();
        let ct_a = e.encrypt_f64(&[2.0, 3.0], e.max_level()).unwrap();
        let ct_b = e.encrypt_f64(&[4.0, 5.0], e.max_level()).unwrap();
        let prod = e.rescale(&e.hmult(&ct_a, &ct_b).unwrap()).unwrap();
        let out = e.decrypt_f64(&prod).unwrap();
        assert!((out[0] - 8.0).abs() < 1e-2 && (out[1] - 15.0).abs() < 1e-2);
    }

    #[test]
    fn auto_align_levels_reduces_higher_operand() {
        let e = engine();
        let a = e.encrypt_f64(&[1.0], e.max_level()).unwrap();
        let b = e.encrypt_f64(&[2.0], e.max_level() - 1).unwrap();
        let sum = e.hadd(&a, &b).unwrap();
        assert_eq!(sum.level(), e.max_level() - 1);
        let strict = e.with_policy_copy(|p| p.auto_align_levels = false);
        let err = strict.hadd(&a, &b).unwrap_err();
        assert_eq!(err.kind(), ErrorKind::LevelMismatch);
    }

    #[test]
    fn noise_floor_refuses_deep_products() {
        let e = engine().with_policy(OpPolicy {
            min_noise_budget_bits: 1e6,
            ..OpPolicy::default()
        });
        let a = e.encrypt_f64(&[1.0], e.max_level()).unwrap();
        let b = e.encrypt_f64(&[1.0], e.max_level()).unwrap();
        let err = e.hmult(&a, &b).unwrap_err();
        assert_eq!(err.kind(), ErrorKind::NoiseBudgetExhausted);
    }

    #[test]
    fn warm_key_policy_refuses_cold_rotation() {
        let e = engine().with_policy(OpPolicy {
            require_warm_keys: true,
            ..OpPolicy::default()
        });
        let a = e.encrypt_f64(&[1.0, 2.0], e.max_level()).unwrap();
        let err = e.hrotate(&a, 1).unwrap_err();
        assert_eq!(err.kind(), ErrorKind::KeySwitchKeyMissing);
        let g = ops::galois_element(e.context().degree(), 1);
        e.chest()
            .warm(a.level(), KeyTarget::Galois(g), e.method())
            .unwrap();
        e.hrotate(&a, 1).unwrap();
    }

    #[test]
    fn rescale_at_level_zero_is_chain_exhausted() {
        let e = engine();
        let a = e.encrypt_f64(&[1.0], 0).unwrap();
        let err = e.rescale(&a).unwrap_err();
        assert_eq!(err.kind(), ErrorKind::ModulusChainExhausted);
    }

    impl FheEngine {
        /// Test helper: tweak a copy of the default policy.
        fn with_policy_copy(self, f: impl FnOnce(&mut OpPolicy)) -> Self {
            let mut p = self.policy;
            f(&mut p);
            self.with_policy(p)
        }
    }
}
