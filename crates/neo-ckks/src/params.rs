//! CKKS parameter sets, including the paper's Table 4 presets and the KLSS
//! parameter derivation (`α'` from the Eq. 4 security constraint, `β̃`),
//! plus [`CkksParamsBuilder`] — the checked construction path that rejects
//! infeasible configurations *before* any prime generation runs.

use neo_error::NeoError;
use neo_math::{BackendKind, MathError};
use serde::{Deserialize, Serialize};

/// KLSS key-switching configuration (Section 2.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct KlssConfig {
    /// Bit width of the auxiliary `R_T` primes (`WordSize_T`).
    pub word_size_t: u32,
    /// Key digit size `α̃` (limbs per key digit).
    pub alpha_tilde: usize,
}

/// Which key-switching method an evaluation uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum KsMethod {
    /// The conventional Hybrid method.
    Hybrid,
    /// The KLSS method (CRYPTO'23) over the auxiliary basis `R_T`.
    Klss,
}

/// Static CKKS parameters.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CkksParams {
    /// log2 of the ring degree `N`.
    pub log_n: u32,
    /// Maximum ciphertext level `L` (the chain has `L+1` data primes).
    pub max_level: usize,
    /// Bit width of the data primes (`WordSize`).
    pub word_size: u32,
    /// Number of special primes (`K`, equal to `α` in the paper's setup).
    pub special: usize,
    /// Gadget digit count `d_num`.
    pub dnum: usize,
    /// KLSS configuration, if the KLSS method is to be available.
    pub klss: Option<KlssConfig>,
    /// Ciphertexts batched per operation (performance model only).
    pub batch_size: usize,
    /// Standard deviation of the error distribution.
    pub error_std: f64,
    /// log2 of the encoding scale `Δ`.
    pub scale_bits: u32,
    /// Security level from the paper's Table 4 (reported, not re-derived).
    pub lambda: u32,
    /// Use single scaling (plain Rescale) in bootstrapping even at small
    /// word sizes — the TensorFHE\_SS / Neo\_SS rows of Table 5.
    pub single_scaling: bool,
    /// Compute backend for the NTT/bconv/GEMM hot paths. Defaults to
    /// [`BackendKind::detect`] (the `NEO_BACKEND` override if set,
    /// otherwise the best backend the build and CPU support). Outputs are
    /// bit-identical across backends, so this is purely a throughput knob.
    #[serde(default)]
    pub backend: BackendKind,
}

impl CkksParams {
    /// Ring degree `N`.
    pub fn n(&self) -> usize {
        1usize << self.log_n
    }

    /// Slot count `N/2`.
    pub fn slots(&self) -> usize {
        self.n() / 2
    }

    /// Encoding scale `Δ`.
    pub fn scale(&self) -> f64 {
        2f64.powi(self.scale_bits as i32)
    }

    /// `α = ⌈(L+1)/d_num⌉` — limbs per ciphertext digit.
    pub fn alpha(&self) -> usize {
        (self.max_level + 1).div_ceil(self.dnum)
    }

    /// `β(l) = ⌈(l+1)/α⌉` — digit count at level `l`.
    pub fn beta(&self, level: usize) -> usize {
        (level + 1).div_ceil(self.alpha())
    }

    /// `β̃(l) = ⌈(l+1+K)/α̃⌉` — KLSS output digit count at level `l`.
    ///
    /// # Panics
    ///
    /// Panics if the parameter set has no KLSS configuration.
    pub fn beta_tilde(&self, level: usize) -> usize {
        let k = self.klss.expect("beta_tilde requires a KLSS configuration");
        (level + 1 + self.special).div_ceil(k.alpha_tilde)
    }

    /// `α'` — the `R_T` limb count from the Eq. 4 security/correctness
    /// constraint, sized for the worst case (`l = L`):
    ///
    /// ```text
    /// α' ≥ ⌈ log2(2 β N B B̃) / WordSize_T ⌉,
    ///   B = 2^(α·w),  B̃ = 2^(α̃·w)
    /// ```
    ///
    /// # Panics
    ///
    /// Panics if the parameter set has no KLSS configuration.
    pub fn alpha_prime(&self) -> usize {
        let k = self
            .klss
            .expect("alpha_prime requires a KLSS configuration");
        let beta_max = self.beta(self.max_level) as f64;
        let log_bound = 1.0
            + beta_max.log2()
            + self.log_n as f64
            + (self.alpha() as f64) * self.word_size as f64
            + (k.alpha_tilde as f64) * self.word_size as f64;
        (log_bound / k.word_size_t as f64).ceil() as usize
    }

    /// Basic consistency checks.
    ///
    /// # Errors
    ///
    /// [`MathError::InvalidDegree`] for a degenerate configuration.
    pub fn validate(&self) -> Result<(), MathError> {
        if self.log_n < 3 || self.log_n > 17 {
            return Err(MathError::InvalidDegree(self.log_n as usize));
        }
        if self.dnum == 0 || self.dnum > self.max_level + 1 {
            return Err(MathError::InvalidDegree(self.dnum));
        }
        if self.word_size < 20 || self.word_size > 61 {
            return Err(MathError::InvalidModulus(self.word_size as u64));
        }
        Ok(())
    }

    /// A small parameter set for functional tests: `N = 2^10`, `L = 5`,
    /// 36-bit words, `d_num = 3`, KLSS with 48-bit `R_T` primes.
    pub fn test_small() -> Self {
        Self {
            log_n: 10,
            max_level: 5,
            word_size: 36,
            special: 2,
            dnum: 3,
            klss: Some(KlssConfig {
                word_size_t: 48,
                alpha_tilde: 2,
            }),
            batch_size: 1,
            error_std: 3.2,
            scale_bits: 36,
            lambda: 0,
            single_scaling: false,
            backend: BackendKind::detect(),
        }
    }

    /// A tiny parameter set (`N = 2^8`) for fast unit tests.
    pub fn test_tiny() -> Self {
        Self {
            log_n: 8,
            ..Self::test_small()
        }
    }

    /// Starts a checked builder (see [`CkksParamsBuilder`]).
    pub fn builder() -> CkksParamsBuilder {
        CkksParamsBuilder::new()
    }
}

/// Checked construction of [`CkksParams`]: `build()` runs the structural
/// [`CkksParams::validate`] checks *and* the feasibility checks a context
/// would otherwise only hit at prime-generation time — enough
/// NTT-friendly primes of the chosen word sizes for the chain and the
/// KLSS auxiliary basis, a scale that one rescale can actually remove,
/// and the Eq. 4 KLSS correctness bound.
///
/// ```
/// use neo_ckks::CkksParams;
///
/// let p = CkksParams::builder()
///     .log_n(10)
///     .max_level(5)
///     .word_size(36)
///     .dnum(3)
///     .klss(48, 2)
///     .build()?;
/// assert_eq!(p.alpha(), 2);
/// # Ok::<(), neo_ckks::NeoError>(())
/// ```
#[derive(Debug, Clone)]
pub struct CkksParamsBuilder {
    log_n: u32,
    max_level: usize,
    word_size: u32,
    special: Option<usize>,
    dnum: usize,
    klss: Option<KlssConfig>,
    batch_size: usize,
    error_std: f64,
    scale_bits: Option<u32>,
    lambda: u32,
    single_scaling: bool,
    backend: Option<BackendKind>,
}

impl Default for CkksParamsBuilder {
    fn default() -> Self {
        Self::new()
    }
}

impl CkksParamsBuilder {
    /// Starts from the [`CkksParams::test_small`] shape: `N = 2^10`,
    /// `L = 5`, 36-bit words, `d_num = 3`, no KLSS.
    pub fn new() -> Self {
        Self {
            log_n: 10,
            max_level: 5,
            word_size: 36,
            special: None,
            dnum: 3,
            klss: None,
            batch_size: 1,
            error_std: 3.2,
            scale_bits: None,
            lambda: 0,
            single_scaling: false,
            backend: None,
        }
    }

    /// log2 of the ring degree `N`.
    pub fn log_n(mut self, log_n: u32) -> Self {
        self.log_n = log_n;
        self
    }

    /// Maximum ciphertext level `L`.
    pub fn max_level(mut self, max_level: usize) -> Self {
        self.max_level = max_level;
        self
    }

    /// Bit width of the data primes.
    pub fn word_size(mut self, word_size: u32) -> Self {
        self.word_size = word_size;
        self
    }

    /// Number of special primes (defaults to `α` when unset).
    pub fn special(mut self, special: usize) -> Self {
        self.special = Some(special);
        self
    }

    /// Gadget digit count `d_num`.
    pub fn dnum(mut self, dnum: usize) -> Self {
        self.dnum = dnum;
        self
    }

    /// Enables KLSS key switching with the given `WordSize_T` and `α̃`.
    pub fn klss(mut self, word_size_t: u32, alpha_tilde: usize) -> Self {
        self.klss = Some(KlssConfig {
            word_size_t,
            alpha_tilde,
        });
        self
    }

    /// Batch size for the performance model.
    pub fn batch_size(mut self, batch_size: usize) -> Self {
        self.batch_size = batch_size;
        self
    }

    /// Standard deviation of the error distribution.
    pub fn error_std(mut self, error_std: f64) -> Self {
        self.error_std = error_std;
        self
    }

    /// log2 of the encoding scale `Δ` (defaults to the word size).
    pub fn scale_bits(mut self, scale_bits: u32) -> Self {
        self.scale_bits = Some(scale_bits);
        self
    }

    /// Reported security level.
    pub fn lambda(mut self, lambda: u32) -> Self {
        self.lambda = lambda;
        self
    }

    /// Use single scaling in bootstrapping.
    pub fn single_scaling(mut self, single_scaling: bool) -> Self {
        self.single_scaling = single_scaling;
        self
    }

    /// Pins the compute backend for the NTT/bconv/GEMM hot paths
    /// (defaults to [`BackendKind::detect`]). Results are bit-identical
    /// across backends; only throughput differs.
    pub fn backend(mut self, backend: BackendKind) -> Self {
        self.backend = Some(backend);
        self
    }

    /// Approximate count of NTT-friendly primes (`p ≡ 1 mod 2N`) of
    /// exactly `bits` bits, by the prime-counting density: of the
    /// `2^(bits-1)` integers in range, one in `ln(2^bits)` is prime and
    /// one in `2N` of those has the required residue.
    fn available_primes(bits: u32, log_n: u32) -> f64 {
        let range = 2f64.powi(bits as i32 - 1);
        let density = 1.0 / ((bits as f64) * std::f64::consts::LN_2);
        range * density / 2f64.powi(log_n as i32 + 1)
    }

    /// Validates and assembles the parameter set.
    ///
    /// # Errors
    ///
    /// [`NeoError::Math`] for the structural checks of
    /// [`CkksParams::validate`]; [`NeoError::InvalidParams`] when the
    /// word size cannot supply enough NTT-friendly primes for the chain
    /// (or `WordSize_T` for the auxiliary basis), when the scale cannot
    /// be removed by one rescale (`Δ` wider than a prime), or when the
    /// KLSS configuration is degenerate or violates the Eq. 4 bound.
    pub fn build(self) -> Result<CkksParams, NeoError> {
        let mut p = CkksParams {
            log_n: self.log_n,
            max_level: self.max_level,
            word_size: self.word_size,
            special: self.special.unwrap_or(0),
            dnum: self.dnum,
            klss: self.klss,
            batch_size: self.batch_size,
            error_std: self.error_std,
            scale_bits: self.scale_bits.unwrap_or(self.word_size),
            lambda: self.lambda,
            single_scaling: self.single_scaling,
            backend: self.backend.unwrap_or_else(BackendKind::detect),
        };
        p.validate()?;
        // alpha() divides by dnum, so derive the default special count
        // only after validate() has rejected dnum == 0.
        if self.special.is_none() {
            p.special = p.alpha();
        }
        if p.batch_size == 0 {
            return Err(NeoError::invalid_params("batch_size must be at least 1"));
        }
        if p.error_std.is_nan() || p.error_std <= 0.0 {
            return Err(NeoError::invalid_params(format!(
                "error_std must be positive, got {}",
                p.error_std
            )));
        }
        // Scale/level compatibility: one rescale divides by one data
        // prime, so Δ wider than a prime can never be removed — and a
        // degenerate Δ < 2^2 leaves no precision at all.
        if p.scale_bits > p.word_size {
            return Err(NeoError::invalid_params(format!(
                "scale_bits {} exceeds word_size {}: one rescale cannot remove Δ",
                p.scale_bits, p.word_size
            )));
        }
        if p.scale_bits < 2 {
            return Err(NeoError::invalid_params(format!(
                "scale_bits {} leaves no precision",
                p.scale_bits
            )));
        }
        // NTT-friendliness: the chain needs L+1 data primes and K special
        // primes, all ≡ 1 mod 2N, all word_size bits wide.
        let needed = (p.max_level + 1 + p.special) as f64;
        let avail = Self::available_primes(p.word_size, p.log_n);
        if avail < needed {
            return Err(NeoError::invalid_params(format!(
                "word_size {} supplies only ~{avail:.0} NTT-friendly primes for \
                 N = 2^{}, but the chain needs {needed}",
                p.word_size, p.log_n
            )));
        }
        if let Some(k) = p.klss {
            if k.alpha_tilde == 0 || k.alpha_tilde > p.max_level + 1 + p.special {
                return Err(NeoError::invalid_params(format!(
                    "KLSS alpha_tilde {} out of range 1..={}",
                    k.alpha_tilde,
                    p.max_level + 1 + p.special
                )));
            }
            if k.word_size_t < 20 || k.word_size_t > 64 {
                return Err(NeoError::invalid_params(format!(
                    "KLSS word_size_t {} out of range 20..=64",
                    k.word_size_t
                )));
            }
            // Eq. 4: the auxiliary modulus T = ∏ t_i (α' primes of
            // WordSize_T bits) must dominate the inner-product bound
            // 2·β·N·B·B̃ so R_T residues determine it exactly.
            let alpha_prime = p.alpha_prime();
            let t_bits = alpha_prime as f64 * k.word_size_t as f64;
            let bound_bits = 1.0
                + (p.beta(p.max_level) as f64).log2()
                + p.log_n as f64
                + (p.alpha() as f64) * p.word_size as f64
                + (k.alpha_tilde as f64) * p.word_size as f64;
            if t_bits < bound_bits {
                return Err(NeoError::invalid_params(format!(
                    "KLSS Eq. 4 violated: T has {t_bits:.0} bits but the \
                     inner-product bound needs {bound_bits:.1}"
                )));
            }
            // The auxiliary basis must itself be realizable with
            // NTT-friendly primes, and small enough to be worth it.
            let t_avail = Self::available_primes(k.word_size_t, p.log_n);
            if t_avail < alpha_prime as f64 {
                return Err(NeoError::invalid_params(format!(
                    "KLSS word_size_t {} supplies only ~{t_avail:.0} NTT-friendly \
                     primes for N = 2^{}, but α' = {alpha_prime}",
                    k.word_size_t, p.log_n
                )));
            }
            if alpha_prime > p.max_level + 1 + p.special {
                return Err(NeoError::invalid_params(format!(
                    "KLSS auxiliary basis (α' = {alpha_prime}) is larger than \
                     R_PQ itself ({} limbs): the method cannot pay off",
                    p.max_level + 1 + p.special
                )));
            }
        }
        Ok(p)
    }
}

/// The paper's Table 4 parameter sets.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ParamSet {
    /// `d_num = 1`, 36-bit words, Hybrid.
    A,
    /// `d_num = 3`, 36-bit words, Hybrid.
    B,
    /// `d_num = 9`, 36-bit words, KLSS with `WordSize_T = 48`, `α̃ = 5`.
    C,
    /// 60-bit words, `d_num = 36`, KLSS with `WordSize_T = 64`, `α̃ = 3`
    /// (HEonGPU-comparable).
    D,
    /// 60-bit words, `d_num = 36`, Hybrid (HEonGPU's own setting).
    E,
    /// `L = 23`, 36-bit, `d_num = 1` (TensorFHE single-scaling setting).
    F,
    /// `L = 23`, 36-bit, `d_num = 6`, KLSS (Neo single-scaling setting).
    G,
    /// `L = 44`, 60-bit, `d_num = 45` (CPU/100x setting).
    H,
}

impl ParamSet {
    /// All sets in order.
    pub const ALL: [ParamSet; 8] = [
        ParamSet::A,
        ParamSet::B,
        ParamSet::C,
        ParamSet::D,
        ParamSet::E,
        ParamSet::F,
        ParamSet::G,
        ParamSet::H,
    ];

    /// Materializes the Table 4 column.
    pub fn params(self) -> CkksParams {
        let base = CkksParams {
            log_n: 16,
            max_level: 35,
            word_size: 36,
            special: 0, // filled below as alpha
            dnum: 1,
            klss: None,
            batch_size: 128,
            error_std: 3.2,
            scale_bits: 36,
            lambda: 128,
            single_scaling: false,
            backend: BackendKind::detect(),
        };
        let mut p = match self {
            ParamSet::A => CkksParams { dnum: 1, ..base },
            ParamSet::B => CkksParams { dnum: 3, ..base },
            ParamSet::C => CkksParams {
                dnum: 9,
                klss: Some(KlssConfig {
                    word_size_t: 48,
                    alpha_tilde: 5,
                }),
                ..base
            },
            ParamSet::D => CkksParams {
                word_size: 60,
                scale_bits: 60,
                dnum: 36,
                klss: Some(KlssConfig {
                    word_size_t: 64,
                    alpha_tilde: 3,
                }),
                ..base
            },
            ParamSet::E => CkksParams {
                word_size: 60,
                scale_bits: 60,
                dnum: 36,
                ..base
            },
            ParamSet::F => CkksParams {
                max_level: 23,
                dnum: 1,
                single_scaling: true,
                ..base
            },
            ParamSet::G => CkksParams {
                max_level: 23,
                dnum: 6,
                klss: Some(KlssConfig {
                    word_size_t: 48,
                    alpha_tilde: 5,
                }),
                single_scaling: true,
                ..base
            },
            ParamSet::H => CkksParams {
                max_level: 44,
                word_size: 60,
                scale_bits: 60,
                dnum: 45,
                lambda: 98,
                ..base
            },
        };
        p.special = p.alpha();
        p
    }
}

impl std::fmt::Display for ParamSet {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Set-{self:?}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_c_derives_paper_alpha_prime() {
        // The paper's default: alpha = 4, alpha' = 8 (Fig. 11 caption).
        let p = ParamSet::C.params();
        assert_eq!(p.alpha(), 4);
        assert_eq!(p.alpha_prime(), 8);
        assert_eq!(p.beta(35), 9);
        assert_eq!(p.beta_tilde(35), 8);
    }

    #[test]
    fn set_d_alpha_prime() {
        let p = ParamSet::D.params();
        assert_eq!(p.alpha(), 1);
        // log2(2*36*2^16*2^60*2^180) ≈ 262.2 -> ceil(262.2/64) = 5.
        assert_eq!(p.alpha_prime(), 5);
    }

    #[test]
    fn beta_shrinks_with_level() {
        let p = ParamSet::C.params();
        assert_eq!(p.beta(35), 9);
        assert_eq!(p.beta(3), 1);
        assert!(p.beta_tilde(3) < p.beta_tilde(35));
    }

    #[test]
    fn all_sets_validate() {
        for s in ParamSet::ALL {
            s.params().validate().unwrap_or_else(|e| panic!("{s}: {e}"));
        }
    }

    #[test]
    fn display_format() {
        assert_eq!(ParamSet::C.to_string(), "Set-C");
    }

    #[test]
    fn builder_matches_test_small() {
        let built = CkksParams::builder().build().unwrap();
        assert_eq!(built.klss, None);
        let with_klss = CkksParams::builder().klss(48, 2).build().unwrap();
        assert_eq!(with_klss, CkksParams::test_small());
    }

    #[test]
    fn builder_pins_backend() {
        let p = CkksParams::builder()
            .backend(BackendKind::Portable)
            .build()
            .unwrap();
        assert_eq!(p.backend, BackendKind::Portable);
        let s = CkksParams::builder()
            .backend(BackendKind::Simd)
            .build()
            .unwrap();
        assert_eq!(s.backend, BackendKind::Simd);
        // Unset defaults to the process-wide detection.
        assert_eq!(
            CkksParams::builder().build().unwrap().backend,
            BackendKind::detect()
        );
    }

    #[test]
    fn builder_rejects_infeasible_prime_supply() {
        // 20-bit NTT-friendly primes are too sparse for N = 2^16.
        let err = CkksParams::builder()
            .log_n(16)
            .word_size(20)
            .scale_bits(18)
            .build()
            .unwrap_err();
        assert_eq!(err.kind(), neo_error::ErrorKind::InvalidParams);
        assert!(err.to_string().contains("NTT-friendly"), "{err}");
    }

    #[test]
    fn builder_rejects_scale_wider_than_word() {
        let err = CkksParams::builder()
            .word_size(36)
            .scale_bits(40)
            .build()
            .unwrap_err();
        assert!(err.to_string().contains("rescale"), "{err}");
    }

    #[test]
    fn builder_rejects_degenerate_klss() {
        assert!(CkksParams::builder().klss(48, 0).build().is_err());
        assert!(CkksParams::builder().klss(16, 2).build().is_err());
        // An α̃ so large the auxiliary basis outgrows R_PQ itself.
        let err = CkksParams::builder()
            .klss(20, 8)
            .special(2)
            .build()
            .unwrap_err();
        assert_eq!(err.kind(), neo_error::ErrorKind::InvalidParams);
    }

    #[test]
    fn builder_rejects_structural_errors_via_math() {
        let err = CkksParams::builder().log_n(2).build().unwrap_err();
        assert_eq!(err.kind(), neo_error::ErrorKind::Math);
        assert!(CkksParams::builder().dnum(0).build().is_err());
    }

    #[test]
    fn test_set_klss_geometry_is_consistent() {
        let p = CkksParams::test_small();
        p.validate().unwrap();
        assert_eq!(p.alpha(), 2);
        assert_eq!(p.beta(5), 3);
        // T must exceed 2*beta*N*B*B~ with margin (Eq. 4 satisfied by
        // construction of alpha_prime).
        let k = p.klss.unwrap();
        let t_bits = p.alpha_prime() as f64 * k.word_size_t as f64;
        let bound_bits = 1.0
            + (p.beta(5) as f64).log2()
            + p.log_n as f64
            + (p.alpha() * p.word_size as usize) as f64
            + (k.alpha_tilde * p.word_size as usize) as f64;
        assert!(t_bits >= bound_bits, "{t_bits} < {bound_bits}");
    }
}
