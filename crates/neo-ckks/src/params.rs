//! CKKS parameter sets, including the paper's Table 4 presets and the KLSS
//! parameter derivation (`α'` from the Eq. 4 security constraint, `β̃`).

use neo_math::MathError;
use serde::{Deserialize, Serialize};

/// KLSS key-switching configuration (Section 2.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct KlssConfig {
    /// Bit width of the auxiliary `R_T` primes (`WordSize_T`).
    pub word_size_t: u32,
    /// Key digit size `α̃` (limbs per key digit).
    pub alpha_tilde: usize,
}

/// Which key-switching method an evaluation uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum KsMethod {
    /// The conventional Hybrid method.
    Hybrid,
    /// The KLSS method (CRYPTO'23) over the auxiliary basis `R_T`.
    Klss,
}

/// Static CKKS parameters.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CkksParams {
    /// log2 of the ring degree `N`.
    pub log_n: u32,
    /// Maximum ciphertext level `L` (the chain has `L+1` data primes).
    pub max_level: usize,
    /// Bit width of the data primes (`WordSize`).
    pub word_size: u32,
    /// Number of special primes (`K`, equal to `α` in the paper's setup).
    pub special: usize,
    /// Gadget digit count `d_num`.
    pub dnum: usize,
    /// KLSS configuration, if the KLSS method is to be available.
    pub klss: Option<KlssConfig>,
    /// Ciphertexts batched per operation (performance model only).
    pub batch_size: usize,
    /// Standard deviation of the error distribution.
    pub error_std: f64,
    /// log2 of the encoding scale `Δ`.
    pub scale_bits: u32,
    /// Security level from the paper's Table 4 (reported, not re-derived).
    pub lambda: u32,
    /// Use single scaling (plain Rescale) in bootstrapping even at small
    /// word sizes — the TensorFHE\_SS / Neo\_SS rows of Table 5.
    pub single_scaling: bool,
}

impl CkksParams {
    /// Ring degree `N`.
    pub fn n(&self) -> usize {
        1usize << self.log_n
    }

    /// Slot count `N/2`.
    pub fn slots(&self) -> usize {
        self.n() / 2
    }

    /// Encoding scale `Δ`.
    pub fn scale(&self) -> f64 {
        2f64.powi(self.scale_bits as i32)
    }

    /// `α = ⌈(L+1)/d_num⌉` — limbs per ciphertext digit.
    pub fn alpha(&self) -> usize {
        (self.max_level + 1).div_ceil(self.dnum)
    }

    /// `β(l) = ⌈(l+1)/α⌉` — digit count at level `l`.
    pub fn beta(&self, level: usize) -> usize {
        (level + 1).div_ceil(self.alpha())
    }

    /// `β̃(l) = ⌈(l+1+K)/α̃⌉` — KLSS output digit count at level `l`.
    ///
    /// # Panics
    ///
    /// Panics if the parameter set has no KLSS configuration.
    pub fn beta_tilde(&self, level: usize) -> usize {
        let k = self.klss.expect("beta_tilde requires a KLSS configuration");
        (level + 1 + self.special).div_ceil(k.alpha_tilde)
    }

    /// `α'` — the `R_T` limb count from the Eq. 4 security/correctness
    /// constraint, sized for the worst case (`l = L`):
    ///
    /// ```text
    /// α' ≥ ⌈ log2(2 β N B B̃) / WordSize_T ⌉,
    ///   B = 2^(α·w),  B̃ = 2^(α̃·w)
    /// ```
    ///
    /// # Panics
    ///
    /// Panics if the parameter set has no KLSS configuration.
    pub fn alpha_prime(&self) -> usize {
        let k = self
            .klss
            .expect("alpha_prime requires a KLSS configuration");
        let beta_max = self.beta(self.max_level) as f64;
        let log_bound = 1.0
            + beta_max.log2()
            + self.log_n as f64
            + (self.alpha() as f64) * self.word_size as f64
            + (k.alpha_tilde as f64) * self.word_size as f64;
        (log_bound / k.word_size_t as f64).ceil() as usize
    }

    /// Basic consistency checks.
    ///
    /// # Errors
    ///
    /// [`MathError::InvalidDegree`] for a degenerate configuration.
    pub fn validate(&self) -> Result<(), MathError> {
        if self.log_n < 3 || self.log_n > 17 {
            return Err(MathError::InvalidDegree(self.log_n as usize));
        }
        if self.dnum == 0 || self.dnum > self.max_level + 1 {
            return Err(MathError::InvalidDegree(self.dnum));
        }
        if self.word_size < 20 || self.word_size > 61 {
            return Err(MathError::InvalidModulus(self.word_size as u64));
        }
        Ok(())
    }

    /// A small parameter set for functional tests: `N = 2^10`, `L = 5`,
    /// 36-bit words, `d_num = 3`, KLSS with 48-bit `R_T` primes.
    pub fn test_small() -> Self {
        Self {
            log_n: 10,
            max_level: 5,
            word_size: 36,
            special: 2,
            dnum: 3,
            klss: Some(KlssConfig {
                word_size_t: 48,
                alpha_tilde: 2,
            }),
            batch_size: 1,
            error_std: 3.2,
            scale_bits: 36,
            lambda: 0,
            single_scaling: false,
        }
    }

    /// A tiny parameter set (`N = 2^8`) for fast unit tests.
    pub fn test_tiny() -> Self {
        Self {
            log_n: 8,
            ..Self::test_small()
        }
    }
}

/// The paper's Table 4 parameter sets.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ParamSet {
    /// `d_num = 1`, 36-bit words, Hybrid.
    A,
    /// `d_num = 3`, 36-bit words, Hybrid.
    B,
    /// `d_num = 9`, 36-bit words, KLSS with `WordSize_T = 48`, `α̃ = 5`.
    C,
    /// 60-bit words, `d_num = 36`, KLSS with `WordSize_T = 64`, `α̃ = 3`
    /// (HEonGPU-comparable).
    D,
    /// 60-bit words, `d_num = 36`, Hybrid (HEonGPU's own setting).
    E,
    /// `L = 23`, 36-bit, `d_num = 1` (TensorFHE single-scaling setting).
    F,
    /// `L = 23`, 36-bit, `d_num = 6`, KLSS (Neo single-scaling setting).
    G,
    /// `L = 44`, 60-bit, `d_num = 45` (CPU/100x setting).
    H,
}

impl ParamSet {
    /// All sets in order.
    pub const ALL: [ParamSet; 8] = [
        ParamSet::A,
        ParamSet::B,
        ParamSet::C,
        ParamSet::D,
        ParamSet::E,
        ParamSet::F,
        ParamSet::G,
        ParamSet::H,
    ];

    /// Materializes the Table 4 column.
    pub fn params(self) -> CkksParams {
        let base = CkksParams {
            log_n: 16,
            max_level: 35,
            word_size: 36,
            special: 0, // filled below as alpha
            dnum: 1,
            klss: None,
            batch_size: 128,
            error_std: 3.2,
            scale_bits: 36,
            lambda: 128,
            single_scaling: false,
        };
        let mut p = match self {
            ParamSet::A => CkksParams { dnum: 1, ..base },
            ParamSet::B => CkksParams { dnum: 3, ..base },
            ParamSet::C => CkksParams {
                dnum: 9,
                klss: Some(KlssConfig {
                    word_size_t: 48,
                    alpha_tilde: 5,
                }),
                ..base
            },
            ParamSet::D => CkksParams {
                word_size: 60,
                scale_bits: 60,
                dnum: 36,
                klss: Some(KlssConfig {
                    word_size_t: 64,
                    alpha_tilde: 3,
                }),
                ..base
            },
            ParamSet::E => CkksParams {
                word_size: 60,
                scale_bits: 60,
                dnum: 36,
                ..base
            },
            ParamSet::F => CkksParams {
                max_level: 23,
                dnum: 1,
                single_scaling: true,
                ..base
            },
            ParamSet::G => CkksParams {
                max_level: 23,
                dnum: 6,
                klss: Some(KlssConfig {
                    word_size_t: 48,
                    alpha_tilde: 5,
                }),
                single_scaling: true,
                ..base
            },
            ParamSet::H => CkksParams {
                max_level: 44,
                word_size: 60,
                scale_bits: 60,
                dnum: 45,
                lambda: 98,
                ..base
            },
        };
        p.special = p.alpha();
        p
    }
}

impl std::fmt::Display for ParamSet {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Set-{self:?}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_c_derives_paper_alpha_prime() {
        // The paper's default: alpha = 4, alpha' = 8 (Fig. 11 caption).
        let p = ParamSet::C.params();
        assert_eq!(p.alpha(), 4);
        assert_eq!(p.alpha_prime(), 8);
        assert_eq!(p.beta(35), 9);
        assert_eq!(p.beta_tilde(35), 8);
    }

    #[test]
    fn set_d_alpha_prime() {
        let p = ParamSet::D.params();
        assert_eq!(p.alpha(), 1);
        // log2(2*36*2^16*2^60*2^180) ≈ 262.2 -> ceil(262.2/64) = 5.
        assert_eq!(p.alpha_prime(), 5);
    }

    #[test]
    fn beta_shrinks_with_level() {
        let p = ParamSet::C.params();
        assert_eq!(p.beta(35), 9);
        assert_eq!(p.beta(3), 1);
        assert!(p.beta_tilde(3) < p.beta_tilde(35));
    }

    #[test]
    fn all_sets_validate() {
        for s in ParamSet::ALL {
            s.params().validate().unwrap_or_else(|e| panic!("{s}: {e}"));
        }
    }

    #[test]
    fn display_format() {
        assert_eq!(ParamSet::C.to_string(), "Set-C");
    }

    #[test]
    fn test_set_klss_geometry_is_consistent() {
        let p = CkksParams::test_small();
        p.validate().unwrap();
        assert_eq!(p.alpha(), 2);
        assert_eq!(p.beta(5), 3);
        // T must exceed 2*beta*N*B*B~ with margin (Eq. 4 satisfied by
        // construction of alpha_prime).
        let k = p.klss.unwrap();
        let t_bits = p.alpha_prime() as f64 * k.word_size_t as f64;
        let bound_bits = 1.0
            + (p.beta(5) as f64).log2()
            + p.log_n as f64
            + (p.alpha() * p.word_size as usize) as f64
            + (k.alpha_tilde * p.word_size as usize) as f64;
        assert!(t_bits >= bound_bits, "{t_bits} < {bound_bits}");
    }
}
