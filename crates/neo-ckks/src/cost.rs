//! Operation-level cost assembly: turns CKKS parameters plus an execution
//! strategy into the kernel sequences the device model prices.
//!
//! This is the layer that regenerates the paper's evaluation: a
//! [`CostConfig`] captures one design point (which key-switching method,
//! which NTT algorithm, which compute component each matmul runs on), and
//! [`op_profiles`] emits the exact kernel sequence of each CKKS operation
//! at a level. Conventions:
//!
//! * ciphertexts are NTT-resident (standard on GPUs); key switching pays
//!   the INTT of its input and the NTTs after Mod Up;
//! * profiles describe one *batched* operation over
//!   `params.batch_size` ciphertexts; [`op_time_us`] reports the
//!   batch-amortized per-ciphertext time, which is what the paper's
//!   tables quote;
//! * small batches underutilize the GPU; utilization follows a saturating
//!   `bs / (bs + BATCH_HALF)` curve (Fig. 17).

use crate::params::{CkksParams, KsMethod};
use neo_gpu_sim::{DeviceModel, ExecConfig, KernelProfile};
use neo_kernels::{
    bconv, elementwise, ip, ntt, BconvGeom, ElemGeom, IpGeom, MatmulTarget, NttAlgorithm, NttGeom,
};

/// Batch size at which utilization reaches 50% of its asymptote.
pub const BATCH_HALF: f64 = 24.0;

/// One end-to-end execution strategy (a row of Fig. 14's ablation).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CostConfig {
    /// Key-switching method.
    pub method: KsMethod,
    /// NTT decomposition.
    pub ntt_alg: NttAlgorithm,
    /// Component executing the NTT matmuls.
    pub ntt_target: MatmulTarget,
    /// Use the matrix-form BConv (Algorithm 2) instead of element-wise.
    pub bconv_matrix: bool,
    /// Component executing the BConv matmul.
    pub bconv_target: MatmulTarget,
    /// Use the matrix-form IP (Algorithm 4) instead of element-wise.
    pub ip_matrix: bool,
    /// Apply Neo's 80%-valid-proportion rule for the IP mapping.
    pub ip_adaptive: bool,
    /// Fixed IP target when not adaptive.
    pub ip_target: MatmulTarget,
    /// Run the Hybrid INTT per digit (`2β(l+α)` transforms, the
    /// TensorFHE implementation behavior that Table 2 records) instead of
    /// accumulating in NTT domain first (`2(l+α)`).
    pub hybrid_intt_per_digit: bool,
    /// Fusion / multi-stream execution model.
    pub exec: ExecConfig,
}

impl CostConfig {
    /// Neo's full configuration: KLSS + matrix dataflow + Radix-16 NTT +
    /// FP64 TCUs with the adaptive IP mapping.
    pub fn neo() -> Self {
        Self {
            method: KsMethod::Klss,
            ntt_alg: NttAlgorithm::Radix16,
            ntt_target: MatmulTarget::TcuFp64,
            bconv_matrix: true,
            bconv_target: MatmulTarget::TcuFp64,
            ip_matrix: true,
            ip_adaptive: true,
            ip_target: MatmulTarget::TcuFp64,
            hybrid_intt_per_digit: false,
            exec: ExecConfig::default(),
        }
    }

    /// TensorFHE: Hybrid method, four-step NTT on INT8 TCUs, element-wise
    /// BConv/IP, kernel fusion but no CUDA/TCU cross-stream overlap.
    pub fn tensorfhe() -> Self {
        Self {
            method: KsMethod::Hybrid,
            ntt_alg: NttAlgorithm::FourStep,
            ntt_target: MatmulTarget::TcuInt8,
            bconv_matrix: false,
            bconv_target: MatmulTarget::Cuda,
            ip_matrix: false,
            ip_adaptive: false,
            ip_target: MatmulTarget::Cuda,
            hybrid_intt_per_digit: true,
            exec: ExecConfig {
                multi_stream: false,
                overlap_eta: 0.0,
                fusion: true,
            },
        }
    }

    /// HEonGPU: Hybrid method, everything on CUDA cores (no TCU use),
    /// well-fused kernels.
    pub fn heongpu() -> Self {
        Self {
            method: KsMethod::Hybrid,
            ntt_alg: NttAlgorithm::Radix2,
            ntt_target: MatmulTarget::Cuda,
            bconv_matrix: false,
            bconv_target: MatmulTarget::Cuda,
            ip_matrix: false,
            ip_adaptive: false,
            ip_target: MatmulTarget::Cuda,
            hybrid_intt_per_digit: false,
            exec: ExecConfig {
                multi_stream: false,
                overlap_eta: 0.0,
                fusion: true,
            },
        }
    }
}

/// A CKKS operation to price.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Operation {
    /// Ciphertext × ciphertext (with relinearization; excludes rescale).
    HMult,
    /// Slot rotation (with Galois key switch).
    HRotate,
    /// Ciphertext × plaintext.
    PMult,
    /// Ciphertext + ciphertext.
    HAdd,
    /// Ciphertext + plaintext.
    PAdd,
    /// One rescale.
    Rescale,
    /// Double rescale (DS).
    DoubleRescale,
}

/// Kernel sequence of one KeySwitch at `level` (batched).
pub fn keyswitch_profiles(p: &CkksParams, level: usize, cfg: &CostConfig) -> Vec<KernelProfile> {
    let n = p.n();
    let bs = p.batch_size;
    let w = p.word_size;
    let k = p.special;
    let alpha = p.alpha();
    let beta = p.beta(level);
    let limbs_qp = level + 1 + k;
    let mut seq = Vec::new();
    // INTT of the keyswitch input (NTT-resident convention).
    seq.push(ntt::profile(
        &NttGeom {
            n,
            count: bs * (level + 1),
            w,
        },
        cfg.ntt_alg,
        cfg.ntt_target,
    ));
    let bconv_profile = |g: &BconvGeom| {
        if cfg.bconv_matrix {
            bconv::profile_matrix(g, cfg.bconv_target)
        } else {
            bconv::profile_original(g)
        }
    };
    match cfg.method {
        KsMethod::Hybrid => {
            // Mod Up: β BConvs into the complement of each digit.
            let g = BconvGeom {
                n,
                batch: bs,
                alpha,
                alpha_out: limbs_qp - alpha,
                w_src: w,
                w_dst: w,
            };
            for _ in 0..beta {
                seq.push(bconv_profile(&g));
            }
            // NTT of all Mod Up outputs.
            seq.push(ntt::profile(
                &NttGeom {
                    n,
                    count: bs * beta * limbs_qp,
                    w,
                },
                cfg.ntt_alg,
                cfg.ntt_target,
            ));
            // Inner product over R_PQ (β̃ = 1 in the Hybrid view).
            let ipg = IpGeom {
                n,
                batch: bs,
                alpha_p: limbs_qp,
                beta,
                beta_t: 1,
                components: 2,
                w,
            };
            seq.push(ip_profile(&ipg, cfg));
            // INTT of both components — per digit before accumulation in
            // the TensorFHE-style flow (Table 2's 2β(l+α)), once after
            // NTT-domain accumulation otherwise.
            let intt_groups = if cfg.hybrid_intt_per_digit { beta } else { 1 };
            seq.push(ntt::profile(
                &NttGeom {
                    n,
                    count: bs * 2 * intt_groups * limbs_qp,
                    w,
                },
                cfg.ntt_alg,
                cfg.ntt_target,
            ));
        }
        KsMethod::Klss => {
            let kc = p.klss.expect("KLSS cost requires a KLSS configuration");
            let wt = kc.word_size_t;
            let alpha_p = p.alpha_prime();
            let beta_t = p.beta_tilde(level);
            // Mod Up into R_T.
            let g = BconvGeom {
                n,
                batch: bs,
                alpha,
                alpha_out: alpha_p,
                w_src: w,
                w_dst: wt,
            };
            for _ in 0..beta {
                seq.push(bconv_profile(&g));
            }
            // NTT over R_T.
            seq.push(ntt::profile(
                &NttGeom {
                    n,
                    count: bs * beta * alpha_p,
                    w: wt,
                },
                cfg.ntt_alg,
                cfg.ntt_target,
            ));
            // IP over R_T.
            let ipg = IpGeom {
                n,
                batch: bs,
                alpha_p,
                beta,
                beta_t,
                components: 2,
                w: wt,
            };
            seq.push(ip_profile(&ipg, cfg));
            // INTT over R_T.
            seq.push(ntt::profile(
                &NttGeom {
                    n,
                    count: bs * 2 * beta_t * alpha_p,
                    w: wt,
                },
                cfg.ntt_alg,
                cfg.ntt_target,
            ));
            // Recover Limbs: the gadget factor ẽ_ĵ is 1 on digit ĵ's own
            // limbs and 0 elsewhere, so each G_ĵ converts only into its α̃
            // limbs — total work 2·α'·(l+α) limb-MACs, Table 2's entry.
            let alpha_tilde = kc.alpha_tilde.min(limbs_qp);
            let rg = BconvGeom {
                n,
                batch: bs,
                alpha: alpha_p,
                alpha_out: alpha_tilde,
                w_src: wt,
                w_dst: w,
            };
            for _ in 0..2 * beta_t {
                seq.push(bconv_profile(&rg));
            }
        }
    }
    // Mod Down: BConv of the special limbs plus the correction arithmetic.
    let mdg = BconvGeom {
        n,
        batch: bs,
        alpha: k,
        alpha_out: level + 1,
        w_src: w,
        w_dst: w,
    };
    seq.push(bconv_profile(&mdg));
    seq.push(bconv_profile(&mdg));
    seq.push(elementwise::profile_modmul(&ElemGeom::poly(
        n,
        2 * (level + 1),
        bs,
    )));
    seq.push(elementwise::profile_modadd(&ElemGeom::poly(
        n,
        2 * (level + 1),
        bs,
    )));
    seq
}

fn ip_profile(g: &IpGeom, cfg: &CostConfig) -> KernelProfile {
    if !cfg.ip_matrix {
        return ip::profile_original(g);
    }
    let target = if cfg.ip_adaptive {
        ip::neo_target(g)
    } else {
        cfg.ip_target
    };
    ip::profile_matrix(g, target)
}

/// Kernel sequence of one batched CKKS operation at `level`.
pub fn op_profiles(
    p: &CkksParams,
    level: usize,
    op: Operation,
    cfg: &CostConfig,
) -> Vec<KernelProfile> {
    let n = p.n();
    let bs = p.batch_size;
    let limbs = level + 1;
    match op {
        Operation::HMult => {
            let mut seq = vec![
                elementwise::profile_modmul(&ElemGeom::poly(n, 4 * limbs, bs)),
                elementwise::profile_modadd(&ElemGeom::poly(n, 3 * limbs, bs)),
            ];
            seq.extend(keyswitch_profiles(p, level, cfg));
            seq.push(elementwise::profile_modadd(&ElemGeom::poly(
                n,
                2 * limbs,
                bs,
            )));
            seq
        }
        Operation::HRotate => {
            let mut seq = vec![elementwise::profile_auto(&ElemGeom::poly(n, 2 * limbs, bs))];
            seq.extend(keyswitch_profiles(p, level, cfg));
            seq.push(elementwise::profile_modadd(&ElemGeom::poly(n, limbs, bs)));
            seq
        }
        Operation::PMult => {
            vec![elementwise::profile_modmul(&ElemGeom::poly(
                n,
                2 * limbs,
                bs,
            ))]
        }
        Operation::HAdd => {
            vec![elementwise::profile_modadd(&ElemGeom::poly(
                n,
                2 * limbs,
                bs,
            ))]
        }
        Operation::PAdd => {
            vec![elementwise::profile_modadd(&ElemGeom::poly(n, limbs, bs))]
        }
        Operation::Rescale => rescale_profiles(p, level, cfg),
        Operation::DoubleRescale => {
            let mut seq = rescale_profiles(p, level, cfg);
            seq.extend(rescale_profiles(p, level.saturating_sub(1), cfg));
            seq
        }
    }
}

fn rescale_profiles(p: &CkksParams, level: usize, cfg: &CostConfig) -> Vec<KernelProfile> {
    let n = p.n();
    let bs = p.batch_size;
    // INTT of the dropped limb, broadcast NTT back, subtract, scale.
    vec![
        ntt::profile(
            &NttGeom {
                n,
                count: bs * 2,
                w: p.word_size,
            },
            cfg.ntt_alg,
            cfg.ntt_target,
        ),
        ntt::profile(
            &NttGeom {
                n,
                count: bs * 2 * level.max(1),
                w: p.word_size,
            },
            cfg.ntt_alg,
            cfg.ntt_target,
        ),
        elementwise::profile_modmul(&ElemGeom::poly(n, 2 * level.max(1), bs)),
        elementwise::profile_modadd(&ElemGeom::poly(n, 2 * level.max(1), bs)),
    ]
}

/// Saturating batch-utilization curve (Fig. 17).
pub fn batch_utilization(batch: usize) -> f64 {
    let bs = batch as f64;
    let full = 128.0 / (128.0 + BATCH_HALF);
    (bs / (bs + BATCH_HALF)) / full
}

/// Batch-amortized per-ciphertext time of one operation, in microseconds
/// (what the paper's Table 6 quotes).
pub fn op_time_us(
    dev: &DeviceModel,
    p: &CkksParams,
    level: usize,
    op: Operation,
    cfg: &CostConfig,
) -> f64 {
    let seq = op_profiles(p, level, op, cfg);
    dev.sequence_time_us(&seq, &cfg.exec) / batch_utilization(p.batch_size) / p.batch_size as f64
}

/// Batch-amortized per-ciphertext KeySwitch time in microseconds.
pub fn keyswitch_time_us(dev: &DeviceModel, p: &CkksParams, level: usize, cfg: &CostConfig) -> f64 {
    let seq = keyswitch_profiles(p, level, cfg);
    dev.sequence_time_us(&seq, &cfg.exec) / batch_utilization(p.batch_size) / p.batch_size as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::ParamSet;

    #[test]
    fn neo_beats_tensorfhe_on_hmult() {
        let dev = DeviceModel::a100();
        let pc = ParamSet::C.params();
        let pa = ParamSet::A.params();
        let neo = op_time_us(&dev, &pc, 35, Operation::HMult, &CostConfig::neo());
        let tfhe = op_time_us(&dev, &pa, 35, Operation::HMult, &CostConfig::tensorfhe());
        let ratio = tfhe / neo;
        assert!(
            ratio > 2.0,
            "expected a large speedup, got {ratio:.2} ({tfhe:.0} vs {neo:.0})"
        );
    }

    #[test]
    fn neo_beats_heongpu() {
        let dev = DeviceModel::a100();
        let pc = ParamSet::C.params();
        let pe = ParamSet::E.params();
        let neo = op_time_us(&dev, &pc, 35, Operation::HMult, &CostConfig::neo());
        let heon = op_time_us(&dev, &pe, 35, Operation::HMult, &CostConfig::heongpu());
        assert!(
            heon > neo,
            "HEonGPU {heon:.0} should be slower than Neo {neo:.0}"
        );
    }

    #[test]
    fn cheap_ops_are_cheap() {
        let dev = DeviceModel::a100();
        let p = ParamSet::C.params();
        let cfg = CostConfig::neo();
        let hmult = op_time_us(&dev, &p, 35, Operation::HMult, &cfg);
        let hadd = op_time_us(&dev, &p, 35, Operation::HAdd, &cfg);
        let pmult = op_time_us(&dev, &p, 35, Operation::PMult, &cfg);
        assert!(hmult / hadd > 10.0, "hmult {hmult:.1} vs hadd {hadd:.2}");
        assert!(hmult / pmult > 10.0);
    }

    #[test]
    fn keyswitch_dominates_hmult() {
        let dev = DeviceModel::a100();
        let p = ParamSet::C.params();
        let cfg = CostConfig::neo();
        let ks = keyswitch_time_us(&dev, &p, 35, &cfg);
        let hm = op_time_us(&dev, &p, 35, Operation::HMult, &cfg);
        assert!(ks < hm && ks > 0.6 * hm, "ks {ks:.0} vs hmult {hm:.0}");
    }

    #[test]
    fn utilization_monotone_in_batch() {
        let mut prev = 0.0;
        for bs in [8usize, 16, 32, 64, 128] {
            let u = batch_utilization(bs);
            assert!(u > prev);
            prev = u;
        }
        assert!((batch_utilization(128) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn time_decreases_with_batch() {
        let dev = DeviceModel::a100();
        let mut p = ParamSet::B.params();
        let cfg = CostConfig::tensorfhe();
        let mut prev = f64::INFINITY;
        for bs in [8usize, 16, 32, 64, 128] {
            p.batch_size = bs;
            let t = op_time_us(&dev, &p, 35, Operation::HMult, &cfg);
            assert!(t < prev, "batch {bs}: {t} !< {prev}");
            prev = t;
        }
    }
}
