//! Operation-level cost assembly: turns CKKS parameters plus an execution
//! strategy into the kernel sequences the device model prices.
//!
//! This is the layer that regenerates the paper's evaluation: a
//! [`CostConfig`] captures one design point (which key-switching method,
//! which NTT algorithm, which compute component each matmul runs on), and
//! [`op_profiles`] emits the exact kernel sequence of each CKKS operation
//! at a level. Conventions:
//!
//! * ciphertexts are NTT-resident (standard on GPUs); key switching pays
//!   the INTT of its input and the NTTs after Mod Up;
//! * profiles describe one *batched* operation over
//!   `params.batch_size` ciphertexts; [`op_time_us`] reports the
//!   batch-amortized per-ciphertext time, which is what the paper's
//!   tables quote;
//! * small batches underutilize the GPU; utilization follows a saturating
//!   `bs / (bs + BATCH_HALF)` curve (Fig. 17).

use crate::params::{CkksParams, KsMethod};
use neo_gpu_sim::{DeviceModel, ExecConfig, KernelProfile};
use neo_kernels::{MatmulTarget, NttAlgorithm};

/// Batch size at which utilization reaches 50% of its asymptote.
pub const BATCH_HALF: f64 = 24.0;

/// One end-to-end execution strategy (a row of Fig. 14's ablation).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CostConfig {
    /// Key-switching method.
    pub method: KsMethod,
    /// NTT decomposition.
    pub ntt_alg: NttAlgorithm,
    /// Component executing the NTT matmuls.
    pub ntt_target: MatmulTarget,
    /// Use the matrix-form BConv (Algorithm 2) instead of element-wise.
    pub bconv_matrix: bool,
    /// Component executing the BConv matmul.
    pub bconv_target: MatmulTarget,
    /// Use the matrix-form IP (Algorithm 4) instead of element-wise.
    pub ip_matrix: bool,
    /// Apply Neo's 80%-valid-proportion rule for the IP mapping.
    pub ip_adaptive: bool,
    /// Fixed IP target when not adaptive.
    pub ip_target: MatmulTarget,
    /// Run the Hybrid INTT per digit (`2β(l+α)` transforms, the
    /// TensorFHE implementation behavior that Table 2 records) instead of
    /// accumulating in NTT domain first (`2(l+α)`).
    pub hybrid_intt_per_digit: bool,
    /// Fusion / multi-stream execution model.
    pub exec: ExecConfig,
}

impl CostConfig {
    /// Neo's full configuration: KLSS + matrix dataflow + Radix-16 NTT +
    /// FP64 TCUs with the adaptive IP mapping.
    pub fn neo() -> Self {
        Self {
            method: KsMethod::Klss,
            ntt_alg: NttAlgorithm::Radix16,
            ntt_target: MatmulTarget::TcuFp64,
            bconv_matrix: true,
            bconv_target: MatmulTarget::TcuFp64,
            ip_matrix: true,
            ip_adaptive: true,
            ip_target: MatmulTarget::TcuFp64,
            hybrid_intt_per_digit: false,
            exec: ExecConfig::default(),
        }
    }

    /// TensorFHE: Hybrid method, four-step NTT on INT8 TCUs, element-wise
    /// BConv/IP, kernel fusion but no CUDA/TCU cross-stream overlap.
    pub fn tensorfhe() -> Self {
        Self {
            method: KsMethod::Hybrid,
            ntt_alg: NttAlgorithm::FourStep,
            ntt_target: MatmulTarget::TcuInt8,
            bconv_matrix: false,
            bconv_target: MatmulTarget::Cuda,
            ip_matrix: false,
            ip_adaptive: false,
            ip_target: MatmulTarget::Cuda,
            hybrid_intt_per_digit: true,
            exec: ExecConfig {
                multi_stream: false,
                overlap_eta: 0.0,
                fusion: true,
            },
        }
    }

    /// HEonGPU: Hybrid method, everything on CUDA cores (no TCU use),
    /// well-fused kernels.
    pub fn heongpu() -> Self {
        Self {
            method: KsMethod::Hybrid,
            ntt_alg: NttAlgorithm::Radix2,
            ntt_target: MatmulTarget::Cuda,
            bconv_matrix: false,
            bconv_target: MatmulTarget::Cuda,
            ip_matrix: false,
            ip_adaptive: false,
            ip_target: MatmulTarget::Cuda,
            hybrid_intt_per_digit: false,
            exec: ExecConfig {
                multi_stream: false,
                overlap_eta: 0.0,
                fusion: true,
            },
        }
    }
}

/// A CKKS operation to price.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Operation {
    /// Ciphertext × ciphertext (with relinearization; excludes rescale).
    HMult,
    /// Slot rotation (with Galois key switch).
    HRotate,
    /// Ciphertext × plaintext.
    PMult,
    /// Ciphertext + ciphertext.
    HAdd,
    /// Ciphertext + plaintext.
    PAdd,
    /// One rescale.
    Rescale,
    /// Double rescale (DS).
    DoubleRescale,
}

/// Kernel sequence of one KeySwitch at `level` (batched).
///
/// The sequence is the topological order of the kernel DAG built by
/// [`crate::sched::append_keyswitch`] — the graph is the source of
/// truth; this flat view is what the closed-form sums-based model
/// prices.
pub fn keyswitch_profiles(p: &CkksParams, level: usize, cfg: &CostConfig) -> Vec<KernelProfile> {
    crate::sched::keyswitch_graph(p, level, cfg).profiles()
}

/// Kernel sequence of one batched CKKS operation at `level` — the
/// topological order of [`crate::sched::op_graph`].
pub fn op_profiles(
    p: &CkksParams,
    level: usize,
    op: Operation,
    cfg: &CostConfig,
) -> Vec<KernelProfile> {
    crate::sched::op_graph(p, level, op, cfg).profiles()
}

/// Saturating batch-utilization curve (Fig. 17).
pub fn batch_utilization(batch: usize) -> f64 {
    let bs = batch as f64;
    let full = 128.0 / (128.0 + BATCH_HALF);
    (bs / (bs + BATCH_HALF)) / full
}

/// Batch-amortized per-ciphertext time of one operation, in microseconds
/// (what the paper's Table 6 quotes).
pub fn op_time_us(
    dev: &DeviceModel,
    p: &CkksParams,
    level: usize,
    op: Operation,
    cfg: &CostConfig,
) -> f64 {
    let seq = op_profiles(p, level, op, cfg);
    dev.sequence_time_us(&seq, &cfg.exec) / batch_utilization(p.batch_size) / p.batch_size as f64
}

/// Batch-amortized per-ciphertext KeySwitch time in microseconds.
pub fn keyswitch_time_us(dev: &DeviceModel, p: &CkksParams, level: usize, cfg: &CostConfig) -> f64 {
    let seq = keyswitch_profiles(p, level, cfg);
    dev.sequence_time_us(&seq, &cfg.exec) / batch_utilization(p.batch_size) / p.batch_size as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::ParamSet;

    #[test]
    fn neo_beats_tensorfhe_on_hmult() {
        let dev = DeviceModel::a100();
        let pc = ParamSet::C.params();
        let pa = ParamSet::A.params();
        let neo = op_time_us(&dev, &pc, 35, Operation::HMult, &CostConfig::neo());
        let tfhe = op_time_us(&dev, &pa, 35, Operation::HMult, &CostConfig::tensorfhe());
        let ratio = tfhe / neo;
        assert!(
            ratio > 2.0,
            "expected a large speedup, got {ratio:.2} ({tfhe:.0} vs {neo:.0})"
        );
    }

    #[test]
    fn neo_beats_heongpu() {
        let dev = DeviceModel::a100();
        let pc = ParamSet::C.params();
        let pe = ParamSet::E.params();
        let neo = op_time_us(&dev, &pc, 35, Operation::HMult, &CostConfig::neo());
        let heon = op_time_us(&dev, &pe, 35, Operation::HMult, &CostConfig::heongpu());
        assert!(
            heon > neo,
            "HEonGPU {heon:.0} should be slower than Neo {neo:.0}"
        );
    }

    #[test]
    fn cheap_ops_are_cheap() {
        let dev = DeviceModel::a100();
        let p = ParamSet::C.params();
        let cfg = CostConfig::neo();
        let hmult = op_time_us(&dev, &p, 35, Operation::HMult, &cfg);
        let hadd = op_time_us(&dev, &p, 35, Operation::HAdd, &cfg);
        let pmult = op_time_us(&dev, &p, 35, Operation::PMult, &cfg);
        assert!(hmult / hadd > 10.0, "hmult {hmult:.1} vs hadd {hadd:.2}");
        assert!(hmult / pmult > 10.0);
    }

    #[test]
    fn keyswitch_dominates_hmult() {
        let dev = DeviceModel::a100();
        let p = ParamSet::C.params();
        let cfg = CostConfig::neo();
        let ks = keyswitch_time_us(&dev, &p, 35, &cfg);
        let hm = op_time_us(&dev, &p, 35, Operation::HMult, &cfg);
        assert!(ks < hm && ks > 0.6 * hm, "ks {ks:.0} vs hmult {hm:.0}");
    }

    #[test]
    fn utilization_monotone_in_batch() {
        let mut prev = 0.0;
        for bs in [8usize, 16, 32, 64, 128] {
            let u = batch_utilization(bs);
            assert!(u > prev);
            prev = u;
        }
        assert!((batch_utilization(128) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn time_decreases_with_batch() {
        let dev = DeviceModel::a100();
        let mut p = ParamSet::B.params();
        let cfg = CostConfig::tensorfhe();
        let mut prev = f64::INFINITY;
        for bs in [8usize, 16, 32, 64, 128] {
            p.batch_size = bs;
            let t = op_time_us(&dev, &p, 35, Operation::HMult, &cfg);
            assert!(t < prev, "batch {bs}: {t} !< {prev}");
            prev = t;
        }
    }
}
