//! CKKS encoding: packing `N/2` complex slots into a plaintext polynomial
//! via the canonical embedding (the "special FFT" of HEAAN).
//!
//! `encode` computes `m(X) = round(Δ · σ⁻¹(z))` where `σ` evaluates the
//! polynomial at the primitive odd powers `ζ^{5^j}` of the `2N`-th root of
//! unity; `decode` inverts it. Slot rotations then correspond to the
//! Galois automorphisms `X ↦ X^{5^r}`.

use crate::ciphertext::Plaintext;
use crate::context::CkksContext;
use neo_math::RnsPoly;
use std::ops::{Add, Mul, Neg, Sub};

/// A minimal complex number (avoids an external dependency for the one
/// cold path that needs it).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Complex64 {
    /// Real part.
    pub re: f64,
    /// Imaginary part.
    pub im: f64,
}

impl Complex64 {
    /// Constructs `re + im·i`.
    pub fn new(re: f64, im: f64) -> Self {
        Self { re, im }
    }

    /// `e^{iθ}`.
    pub fn cis(theta: f64) -> Self {
        Self {
            re: theta.cos(),
            im: theta.sin(),
        }
    }

    /// Complex conjugate.
    pub fn conj(self) -> Self {
        Self {
            re: self.re,
            im: -self.im,
        }
    }

    /// Magnitude.
    pub fn abs(self) -> f64 {
        self.re.hypot(self.im)
    }

    /// Scales by a real factor.
    pub fn scale(self, s: f64) -> Self {
        Self {
            re: self.re * s,
            im: self.im * s,
        }
    }
}

impl Add for Complex64 {
    type Output = Complex64;
    fn add(self, o: Complex64) -> Complex64 {
        Complex64::new(self.re + o.re, self.im + o.im)
    }
}

impl Sub for Complex64 {
    type Output = Complex64;
    fn sub(self, o: Complex64) -> Complex64 {
        Complex64::new(self.re - o.re, self.im - o.im)
    }
}

impl Mul for Complex64 {
    type Output = Complex64;
    fn mul(self, o: Complex64) -> Complex64 {
        Complex64::new(
            self.re * o.re - self.im * o.im,
            self.re * o.im + self.im * o.re,
        )
    }
}

impl Neg for Complex64 {
    type Output = Complex64;
    fn neg(self) -> Complex64 {
        Complex64::new(-self.re, -self.im)
    }
}

/// Encoder/decoder bound to a context's degree.
#[derive(Debug)]
pub struct Encoder {
    n: usize,
    /// `5^j mod 2N` for `j < N/2`.
    rot_group: Vec<usize>,
    /// `ζ^k = e^{2πik/2N}` for `k ≤ 2N`.
    ksi_pows: Vec<Complex64>,
}

impl Encoder {
    /// Builds an encoder for ring degree `n`.
    ///
    /// # Panics
    ///
    /// Panics unless `n` is a power of two ≥ 8.
    pub fn new(n: usize) -> Self {
        assert!(n.is_power_of_two() && n >= 8, "bad degree {n}");
        let m = 2 * n;
        let slots = n / 2;
        let mut rot_group = Vec::with_capacity(slots);
        let mut five = 1usize;
        for _ in 0..slots {
            rot_group.push(five);
            five = (five * 5) % m;
        }
        let ksi_pows = (0..=m)
            .map(|k| Complex64::cis(2.0 * std::f64::consts::PI * k as f64 / m as f64))
            .collect();
        Self {
            n,
            rot_group,
            ksi_pows,
        }
    }

    /// Slot count `N/2`.
    pub fn slots(&self) -> usize {
        self.n / 2
    }

    /// Encodes complex slots into a plaintext at the given level and scale.
    /// Missing slots are zero-padded; extra values are an error by panic.
    ///
    /// # Panics
    ///
    /// Panics if more than `N/2` values are supplied.
    pub fn encode(
        &self,
        ctx: &CkksContext,
        values: &[Complex64],
        scale: f64,
        level: usize,
    ) -> Plaintext {
        let slots = self.slots();
        assert!(values.len() <= slots, "too many slots");
        let mut vals = vec![Complex64::default(); slots];
        vals[..values.len()].copy_from_slice(values);
        self.fft_special_inv(&mut vals);
        let mut coeffs = vec![0i64; self.n];
        for (j, v) in vals.iter().enumerate() {
            coeffs[j] = (v.re * scale).round() as i64;
            coeffs[j + slots] = (v.im * scale).round() as i64;
        }
        let poly = RnsPoly::from_signed(&coeffs, ctx.q_moduli(level));
        Plaintext::new(poly, scale, level)
    }

    /// Decodes a plaintext back into complex slots.
    ///
    /// # Panics
    ///
    /// Panics if the plaintext is in NTT domain.
    pub fn decode(&self, ctx: &CkksContext, pt: &Plaintext) -> Vec<Complex64> {
        assert_eq!(
            pt.poly().domain(),
            neo_math::Domain::Coeff,
            "decode needs coeff domain"
        );
        let slots = self.slots();
        let basis =
            neo_math::RnsBasis::new(&ctx.q_primes()[..=pt.level()]).expect("valid prefix basis");
        let mut vals = vec![Complex64::default(); slots];
        let mut residues = vec![0u64; pt.level() + 1];
        for (j, v) in vals.iter_mut().enumerate() {
            for (i, r) in residues.iter_mut().enumerate() {
                *r = pt.poly().limb(i)[j];
            }
            let re = basis.reconstruct_centered_f64(&residues) / pt.scale();
            for (i, r) in residues.iter_mut().enumerate() {
                *r = pt.poly().limb(i)[j + slots];
            }
            let im = basis.reconstruct_centered_f64(&residues) / pt.scale();
            *v = Complex64::new(re, im);
        }
        self.fft_special(&mut vals);
        vals
    }

    /// Forward special FFT (decode direction).
    fn fft_special(&self, vals: &mut [Complex64]) {
        let n = vals.len();
        let m = 2 * self.n;
        bit_reverse(vals);
        let mut len = 2;
        while len <= n {
            let lenh = len >> 1;
            let lenq = len << 2;
            for i in (0..n).step_by(len) {
                for j in 0..lenh {
                    let idx = (self.rot_group[j] % lenq) * (m / lenq);
                    let u = vals[i + j];
                    let v = vals[i + j + lenh] * self.ksi_pows[idx];
                    vals[i + j] = u + v;
                    vals[i + j + lenh] = u - v;
                }
            }
            len <<= 1;
        }
    }

    /// Inverse special FFT (encode direction).
    fn fft_special_inv(&self, vals: &mut [Complex64]) {
        let n = vals.len();
        let m = 2 * self.n;
        let mut len = n;
        while len >= 2 {
            let lenh = len >> 1;
            let lenq = len << 2;
            for i in (0..n).step_by(len) {
                for j in 0..lenh {
                    let idx = (lenq - (self.rot_group[j] % lenq)) * (m / lenq);
                    let u = vals[i + j] + vals[i + j + lenh];
                    let v = (vals[i + j] - vals[i + j + lenh]) * self.ksi_pows[idx];
                    vals[i + j] = u;
                    vals[i + j + lenh] = v;
                }
            }
            len >>= 1;
        }
        bit_reverse(vals);
        let inv = 1.0 / n as f64;
        for v in vals.iter_mut() {
            *v = v.scale(inv);
        }
    }
}

fn bit_reverse(vals: &mut [Complex64]) {
    let n = vals.len();
    let bits = n.trailing_zeros();
    for i in 0..n {
        let j = (i as u64).reverse_bits().wrapping_shr(64 - bits) as usize;
        if j > i {
            vals.swap(i, j);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::CkksParams;

    fn setup() -> (CkksContext, Encoder) {
        let ctx = CkksContext::new(CkksParams::test_tiny()).unwrap();
        let enc = Encoder::new(ctx.degree());
        (ctx, enc)
    }

    fn close(a: Complex64, b: Complex64, tol: f64) -> bool {
        (a - b).abs() < tol
    }

    #[test]
    fn encode_decode_roundtrip() {
        let (ctx, enc) = setup();
        let vals: Vec<Complex64> = (0..enc.slots())
            .map(|i| Complex64::new((i as f64 * 0.37).sin(), (i as f64 * 0.11).cos()))
            .collect();
        let pt = enc.encode(&ctx, &vals, ctx.params().scale(), 2);
        let out = enc.decode(&ctx, &pt);
        for (a, b) in vals.iter().zip(&out) {
            assert!(close(*a, *b, 1e-6), "{a:?} vs {b:?}");
        }
    }

    #[test]
    fn encode_zero_padding() {
        let (ctx, enc) = setup();
        let vals = vec![Complex64::new(1.5, -0.5); 3];
        let pt = enc.encode(&ctx, &vals, ctx.params().scale(), 1);
        let out = enc.decode(&ctx, &pt);
        assert!(close(out[0], vals[0], 1e-6));
        assert!(close(out[5], Complex64::default(), 1e-6));
    }

    #[test]
    fn plaintext_addition_is_slotwise() {
        let (ctx, enc) = setup();
        let a: Vec<Complex64> = (0..8).map(|i| Complex64::new(i as f64, 0.0)).collect();
        let b: Vec<Complex64> = (0..8).map(|i| Complex64::new(0.5, i as f64)).collect();
        let scale = ctx.params().scale();
        let mut pa = enc.encode(&ctx, &a, scale, 2);
        let pb = enc.encode(&ctx, &b, scale, 2);
        pa.poly_mut().add_assign(pb.poly(), ctx.q_moduli(2));
        let out = enc.decode(&ctx, &pa);
        for i in 0..8 {
            assert!(close(out[i], a[i] + b[i], 1e-5));
        }
    }

    #[test]
    fn automorphism_rotates_slots() {
        // Find the Galois exponent that implements "rotate left by 1":
        // X -> X^{5} should shift slots by one position.
        let (ctx, enc) = setup();
        let vals: Vec<Complex64> = (0..enc.slots())
            .map(|i| Complex64::new(i as f64, -(i as f64)))
            .collect();
        let pt = enc.encode(&ctx, &vals, ctx.params().scale(), 2);
        let rotated = pt.poly().automorphism(5, ctx.q_moduli(2));
        let pt2 = Plaintext::new(rotated, pt.scale(), pt.level());
        let out = enc.decode(&ctx, &pt2);
        // Rotation direction is a convention; assert it is a cyclic shift
        // by one in one direction.
        let left = (0..enc.slots()).all(|i| close(out[i], vals[(i + 1) % enc.slots()], 1e-5));
        let right = (0..enc.slots())
            .all(|i| close(out[i], vals[(i + enc.slots() - 1) % enc.slots()], 1e-5));
        assert!(
            left || right,
            "X->X^5 is not a slot rotation: {:?} vs {:?}",
            &out[..4],
            &vals[..4]
        );
        assert!(left, "convention check: X->X^5 should rotate left by 1");
    }

    #[test]
    fn conjugation_automorphism() {
        let (ctx, enc) = setup();
        let vals: Vec<Complex64> = (0..enc.slots())
            .map(|i| Complex64::new(0.3 * i as f64, 1.0))
            .collect();
        let pt = enc.encode(&ctx, &vals, ctx.params().scale(), 2);
        let g = 2 * ctx.degree() - 1; // X -> X^{-1}
        let conj = pt.poly().automorphism(g, ctx.q_moduli(2));
        let out = enc.decode(&ctx, &Plaintext::new(conj, pt.scale(), pt.level()));
        for i in 0..enc.slots() {
            assert!(close(out[i], vals[i].conj(), 1e-5));
        }
    }
}
