//! Batch workloads over real ciphertexts: one dependency structure that
//! both *executes* on the host (serial or rayon wavefronts via
//! [`neo_sched::TaskGraph`]) and *prices* on the device model (as a
//! kernel DAG via [`crate::sched`]).
//!
//! A [`BatchProgram`] is a list of ciphertext operations whose operands
//! are either batch inputs or earlier results ([`Slot`]). Independent
//! operations run concurrently under [`BatchProgram::execute`] with
//! `parallel = true`, and the output is bit-identical to the serial run:
//! every CKKS primitive here is a deterministic pure function of its
//! operands, and the required key-switching keys are generated *before*
//! the parallel region (key generation draws from the chest's RNG, so
//! its order must not depend on the thread schedule).
//!
//! Execution isolates per-operation failures: an op that fails (say a
//! rescale at level 0) yields its structured [`NeoError`], ops that
//! depend on it report [`NeoError::PoisonedInput`] naming the failed
//! producer, and every op on an untainted path still returns its result —
//! bit-identical to a run without the failing ops.

use crate::ciphertext::Ciphertext;
use crate::cost::{CostConfig, Operation};
use crate::keys::{KeyChest, KeyTarget};
use crate::ops;
use crate::params::{CkksParams, KsMethod};
use crate::sched::append_op;
use neo_error::{ErrorKind, NeoError};
use neo_ntt::cache as ntt_cache;
use neo_sched::{OpGraph, TaskGraph};
use rand::Rng;
use std::sync::atomic::{AtomicU32, AtomicU64, Ordering};

/// Bounded retry budget [`BatchProgram::execute`] grants each op for
/// transient [`NeoError::FaultDetected`] failures.
pub const DEFAULT_MAX_RETRIES: u32 = 2;

/// Outcome of [`BatchProgram::execute_with_report`]: per-op results plus
/// the recovery accounting the fault-matrix harness and the fault report
/// artifact consume.
#[derive(Debug)]
pub struct BatchReport {
    /// One slot per op: the ciphertext, or the op's own structured error
    /// ([`NeoError::PoisonedInput`] downstream of a failed producer).
    pub results: Vec<Result<Ciphertext, NeoError>>,
    /// Retries attempted per op (0 for a clean first attempt).
    pub retries_attempted: Vec<u32>,
    /// Detected faults that retry absorbed, per op — the op's final
    /// result is bit-identical to a fault-free run.
    pub faults_recovered: Vec<u32>,
    /// Poisoned NTT plan cache entries evicted and rebuilt during
    /// recovery (across all ops of this execution).
    pub plans_quarantined: u64,
}

impl BatchReport {
    /// Total retries across all ops.
    pub fn total_retries(&self) -> u32 {
        self.retries_attempted.iter().sum()
    }

    /// Total recovered faults across all ops.
    pub fn total_recovered(&self) -> u32 {
        self.faults_recovered.iter().sum()
    }
}

/// Maps a detection site back to the `neo_fault` injection site whose
/// recovery tally it should credit.
fn injection_site(site: &str) -> Option<neo_fault::FaultSite> {
    match site {
        "tcu_gemm" | "tcu_fragment" => Some(neo_fault::FaultSite::TcuFragment),
        "ntt_forward" | "ntt_inverse" | "ntt_stage" => Some(neo_fault::FaultSite::NttStage),
        "ntt_plan" => Some(neo_fault::FaultSite::NttPlan),
        "ckks_op" => Some(neo_fault::FaultSite::CkksOp),
        _ => None,
    }
}

/// Whether a detected fault at `site` justifies sweeping the process-wide
/// NTT plan cache before the retry. Only NTT-side detections can implicate
/// a cached plan; sweeping on unrelated sites (TCU checksums, injected op
/// errors) takes the cache's write lock and — under fault injection —
/// can evict and rebuild plans other tenants are concurrently using.
fn sweeps_plan_cache(site: Option<&'static str>) -> bool {
    matches!(
        site,
        Some("ntt_plan" | "ntt_forward" | "ntt_inverse" | "ntt_stage")
    )
}

/// Deterministic backoff between retry attempts: a bounded spin whose
/// length depends only on the attempt number, so a retried run's
/// schedule does not depend on wall-clock timing.
fn backoff(attempt: u32) {
    for _ in 0..(64u64 << attempt.min(6)) {
        std::hint::spin_loop();
    }
}

/// An operand of a batch operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Slot {
    /// The `i`-th input ciphertext of the batch.
    Input(usize),
    /// The output of the `i`-th operation of the program.
    Op(usize),
}

/// One ciphertext operation of a batch program.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BatchOp {
    /// Ciphertext × ciphertext with relinearization.
    HMult(Slot, Slot),
    /// Ciphertext + ciphertext.
    HAdd(Slot, Slot),
    /// Left slot rotation by a step count.
    HRotate(Slot, usize),
    /// Rescale (drops one level).
    Rescale(Slot),
}

impl BatchOp {
    /// The operands this operation reads.
    pub fn operands(&self) -> Vec<Slot> {
        match *self {
            BatchOp::HMult(a, b) | BatchOp::HAdd(a, b) => vec![a, b],
            BatchOp::HRotate(a, _) | BatchOp::Rescale(a) => vec![a],
        }
    }

    /// The cost-model operation this maps to.
    pub fn operation(&self) -> Operation {
        match self {
            BatchOp::HMult(..) => Operation::HMult,
            BatchOp::HAdd(..) => Operation::HAdd,
            BatchOp::HRotate(..) => Operation::HRotate,
            BatchOp::Rescale(..) => Operation::Rescale,
        }
    }
}

/// A batch of ciphertext operations with explicit data dependencies.
#[derive(Debug, Clone, Default)]
pub struct BatchProgram {
    /// The operations, in issue order (operand slots must refer to
    /// inputs or to earlier operations).
    pub ops: Vec<BatchOp>,
}

impl BatchProgram {
    /// Empty program.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends an operation; returns its [`Slot::Op`] index.
    ///
    /// # Errors
    ///
    /// [`NeoError::InvalidParams`] if an operand refers to an operation
    /// at or after this one.
    pub fn try_push(&mut self, op: BatchOp) -> Result<Slot, NeoError> {
        for s in op.operands() {
            if let Slot::Op(j) = s {
                if j >= self.ops.len() {
                    return Err(NeoError::invalid_params(format!(
                        "operand Op({j}) not yet defined"
                    )));
                }
            }
        }
        self.ops.push(op);
        Ok(Slot::Op(self.ops.len() - 1))
    }

    /// The level each operation *runs at* (its input level; a rescale's
    /// output is one lower), given the batch inputs' common level. A
    /// rescale at level 0 is illegal at execution time; here its output
    /// level saturates at 0 so planning over an invalid program still
    /// terminates.
    pub fn op_levels(&self, input_level: usize) -> Vec<usize> {
        let mut out_level: Vec<usize> = Vec::with_capacity(self.ops.len());
        let mut run_level = Vec::with_capacity(self.ops.len());
        for op in &self.ops {
            let lv = |s: Slot| match s {
                Slot::Input(_) => input_level,
                Slot::Op(j) => out_level[j],
            };
            let at = op.operands().into_iter().map(lv).min().expect("operands");
            run_level.push(at);
            out_level.push(match op {
                BatchOp::Rescale(_) => at.saturating_sub(1),
                _ => at,
            });
        }
        run_level
    }

    /// Generates every key-switching key the program will need, in
    /// deterministic issue order. Called by [`Self::execute`] before the
    /// parallel region so the chest's RNG draws in a schedule-independent
    /// order (lazily generating keys from worker threads would make the
    /// keys themselves depend on thread timing).
    ///
    /// # Errors
    ///
    /// [`NeoError::KeySwitchKeyMissing`] if a key cannot be generated
    /// (e.g. KLSS requested without a KLSS parameter configuration).
    pub fn warm_keys(
        &self,
        chest: &KeyChest,
        input_level: usize,
        method: KsMethod,
    ) -> Result<(), NeoError> {
        let n = chest.context().degree();
        let levels = self.op_levels(input_level);
        for (op, &level) in self.ops.iter().zip(&levels) {
            let target = match op {
                BatchOp::HMult(..) => KeyTarget::Relin,
                BatchOp::HRotate(_, steps) => KeyTarget::Galois(ops::galois_element(n, *steps)),
                _ => continue,
            };
            chest.warm(level, target, method)?;
        }
        Ok(())
    }

    /// Checks that every operand slot names an existing batch input.
    fn check_input_slots(&self, n_inputs: usize) -> Result<(), NeoError> {
        for (idx, op) in self.ops.iter().enumerate() {
            for s in op.operands() {
                if let Slot::Input(i) = s {
                    if i >= n_inputs {
                        return Err(NeoError::parameter_mismatch(
                            "batch_execute",
                            format!("op {idx} reads Input({i}) but only {n_inputs} inputs given"),
                        ));
                    }
                }
            }
        }
        Ok(())
    }

    /// Runs the program over `inputs` and returns every operation's
    /// output. With `parallel = true` independent operations execute
    /// concurrently (topological wavefronts on the rayon pool); the
    /// result is bit-identical to the serial run.
    ///
    /// Failures are isolated per operation: an op that fails (after
    /// [`DEFAULT_MAX_RETRIES`] recovery attempts for transient
    /// [`NeoError::FaultDetected`] errors) yields its structured error,
    /// ops that depend on it report [`NeoError::PoisonedInput`] naming
    /// the failed producer, and every op on an untainted path still
    /// returns its result — bit-identical to a run without the failing
    /// ops.
    ///
    /// # Errors
    ///
    /// [`NeoError::LevelMismatch`] if the inputs do not share one level;
    /// [`NeoError::ParameterMismatch`] if an operand names a missing
    /// input; [`NeoError::KeySwitchKeyMissing`] if key warm-up fails.
    pub fn execute(
        &self,
        chest: &KeyChest,
        inputs: &[Ciphertext],
        method: KsMethod,
        parallel: bool,
    ) -> Result<Vec<Result<Ciphertext, NeoError>>, NeoError> {
        self.execute_with_report(chest, inputs, method, parallel, DEFAULT_MAX_RETRIES)
            .map(|r| r.results)
    }

    /// [`Self::execute`] with explicit recovery control and accounting.
    ///
    /// Each op gets up to `max_retries` additional attempts when it fails
    /// with a (retryable) [`NeoError::FaultDetected`]: between attempts
    /// the process-wide NTT plan cache is swept for poisoned entries
    /// ([`neo_ntt::cache::quarantine_corrupt`] — evict and rebuild once)
    /// and a deterministic backoff runs. Because every op is a pure
    /// function of its operands, a successful retry is bit-identical to a
    /// fault-free execution. Key warm-up still happens once, in issue
    /// order, *before* the parallel region — retries reuse the cached
    /// keys and never touch the chest's RNG.
    ///
    /// # Errors
    ///
    /// As [`Self::execute`].
    pub fn execute_with_report(
        &self,
        chest: &KeyChest,
        inputs: &[Ciphertext],
        method: KsMethod,
        parallel: bool,
        max_retries: u32,
    ) -> Result<BatchReport, NeoError> {
        if let Some(first) = inputs.first() {
            for ct in &inputs[1..] {
                if ct.level() != first.level() {
                    return Err(NeoError::level_mismatch(
                        "batch_execute",
                        first.level(),
                        ct.level(),
                    ));
                }
            }
        }
        self.check_input_slots(inputs.len())?;
        if let Some(first) = inputs.first() {
            self.warm_keys(chest, first.level(), method)?;
        }
        let ctx = chest.context();
        let n_ops = self.ops.len();
        let retries: Vec<AtomicU32> = (0..n_ops).map(|_| AtomicU32::new(0)).collect();
        let recovered: Vec<AtomicU32> = (0..n_ops).map(|_| AtomicU32::new(0)).collect();
        let quarantined = AtomicU64::new(0);
        let results = {
            let mut tg: TaskGraph<'_, Result<Ciphertext, NeoError>> = TaskGraph::new();
            for (idx, op) in self.ops.iter().enumerate() {
                // Task dependencies: operand slots that are earlier ops (the
                // task index equals the op index — one task per op).
                let deps: Vec<usize> = op
                    .operands()
                    .into_iter()
                    .filter_map(|s| match s {
                        Slot::Op(j) => Some(j),
                        Slot::Input(_) => None,
                    })
                    .collect();
                let op = *op;
                let dep_ids = deps.clone();
                let (retries, recovered, quarantined) = (&retries, &recovered, &quarantined);
                tg.push(
                    &deps,
                    move |resolved: &[&Result<Ciphertext, NeoError>]| {
                        // A failed producer poisons this op (first failed operand
                        // in operand order names the upstream culprit).
                        for (r, &j) in resolved.iter().zip(&dep_ids) {
                            if r.is_err() {
                                return Err(NeoError::poisoned(idx, j));
                            }
                        }
                        let run = || {
                            // Dep outputs arrive in operand order; inputs come
                            // from the captured slice.
                            let mut next = resolved.iter();
                            let mut get = |s: Slot| -> &Ciphertext {
                                match s {
                                    Slot::Input(i) => &inputs[i],
                                    Slot::Op(_) => next
                                        .next()
                                        .expect("dependency output")
                                        .as_ref()
                                        .expect("poison-checked above"),
                                }
                            };
                            match op {
                                BatchOp::HMult(a, b) => {
                                    let (a, b) = (get(a), get(b));
                                    ops::try_hmult(chest, a, b, method)
                                }
                                BatchOp::HAdd(a, b) => {
                                    let (a, b) = (get(a), get(b));
                                    ops::try_hadd(ctx, a, b)
                                }
                                BatchOp::HRotate(a, steps) => {
                                    ops::try_hrotate(chest, get(a), steps, method)
                                }
                                BatchOp::Rescale(a) => ops::try_rescale(ctx, get(a)),
                            }
                        };
                        let mut attempt = 0u32;
                        let mut last_site: Option<&'static str> = None;
                        loop {
                            match run() {
                                Ok(ct) => {
                                    if attempt > 0 {
                                        recovered[idx].fetch_add(attempt, Ordering::Relaxed);
                                        if let Some(site) = last_site.and_then(injection_site) {
                                            neo_fault::note_recovery(site);
                                        }
                                    }
                                    return Ok(ct);
                                }
                                Err(e)
                                    if e.kind() == ErrorKind::FaultDetected
                                        && attempt < max_retries =>
                                {
                                    if let NeoError::FaultDetected { site, .. } = &e {
                                        last_site = Some(*site);
                                    }
                                    attempt += 1;
                                    retries[idx].fetch_add(1, Ordering::Relaxed);
                                    // An NTT-site fault may stem from a rotted
                                    // plan rather than a transient flip: sweep
                                    // and rebuild poisoned cache entries so the
                                    // retry reruns against clean tables. The
                                    // sweep is gated on the detection site: a
                                    // TCU or spurious-op fault says nothing
                                    // about the plan cache, and the sweep's
                                    // write lock on the process-wide cache
                                    // would stall every other tenant's NTTs
                                    // for no reason (see the interleaved-
                                    // tenant regression test).
                                    if sweeps_plan_cache(last_site) {
                                        let swept = ntt_cache::quarantine_corrupt();
                                        quarantined.fetch_add(swept as u64, Ordering::Relaxed);
                                    }
                                    backoff(attempt);
                                }
                                Err(e) => return Err(e),
                            }
                        }
                    },
                );
            }
            if parallel {
                tg.run_parallel()
            } else {
                tg.run_serial()
            }
        };
        let report = BatchReport {
            results,
            retries_attempted: retries.into_iter().map(AtomicU32::into_inner).collect(),
            faults_recovered: recovered.into_iter().map(AtomicU32::into_inner).collect(),
            plans_quarantined: quarantined.into_inner(),
        };
        crate::metrics::record_batch_report(&report);
        Ok(report)
    }

    /// The program's kernel DAG on the device model: each operation's
    /// kernels are appended via [`crate::sched::append_op`], with the
    /// operation's first kernel depending on its producers' exit kernels.
    pub fn kernel_graph(&self, p: &CkksParams, input_level: usize, cfg: &CostConfig) -> OpGraph {
        let mut g = OpGraph::new();
        self.append_kernel_graph(&mut g, p, input_level, cfg, 0);
        g
    }

    /// Appends this program's kernel DAG to an existing graph, tagging its
    /// operations `tag_base..tag_base + ops.len()`. Programs appended to
    /// the same graph share no edges — they are independent work the
    /// multi-stream simulator may overlap — which is exactly how a serving
    /// layer prices a coalesced batch of several tenants' programs as one
    /// admission unit.
    pub fn append_kernel_graph(
        &self,
        g: &mut OpGraph,
        p: &CkksParams,
        input_level: usize,
        cfg: &CostConfig,
        tag_base: usize,
    ) {
        let levels = self.op_levels(input_level);
        let mut exits = Vec::with_capacity(self.ops.len());
        for (tag, (op, &level)) in self.ops.iter().zip(&levels).enumerate() {
            let after: Vec<_> = op
                .operands()
                .into_iter()
                .filter_map(|s| match s {
                    Slot::Op(j) => Some(exits[j]),
                    Slot::Input(_) => None,
                })
                .collect();
            exits.push(append_op(
                g,
                p,
                level,
                op.operation(),
                cfg,
                &after,
                tag_base + tag,
            ));
        }
    }

    /// A random but *legal* program over `n_inputs` inputs at
    /// `input_level`: operand levels always match, HMult squares only
    /// base-scale operands (Δ·Δ = Δ²), HAdd only adds like scales, and
    /// Rescale drops exactly the Δ² results back to Δ. Used by the
    /// bit-identity property tests and the scheduler bench.
    pub fn random<R: Rng + ?Sized>(
        rng: &mut R,
        n_inputs: usize,
        n_ops: usize,
        input_level: usize,
        slots_n: usize,
    ) -> Self {
        assert!(n_inputs > 0 && input_level >= 1);
        // (slot, level, squared_scale) of every operand candidate.
        let mut meta: Vec<(Slot, usize, bool)> = (0..n_inputs)
            .map(|i| (Slot::Input(i), input_level, false))
            .collect();
        let mut prog = BatchProgram::new();
        for _ in 0..n_ops {
            // Try op kinds in a random rotation; HRotate always succeeds.
            let kinds = ["hmult", "hadd", "rescale", "hrotate"];
            let start = rng.gen_range(0usize..kinds.len());
            let mut placed = None;
            for k in 0..kinds.len() {
                match kinds[(start + k) % kinds.len()] {
                    "hmult" => {
                        // Two base-scale operands at a common level ≥ 1
                        // (so the Δ² result can still rescale).
                        let base: Vec<usize> = (0..meta.len())
                            .filter(|&i| !meta[i].2 && meta[i].1 >= 1)
                            .collect();
                        let Some(&a) = base.first() else { continue };
                        let level = meta[a].1;
                        let same: Vec<usize> = base
                            .iter()
                            .copied()
                            .filter(|&i| meta[i].1 == level)
                            .collect();
                        let x = same[rng.gen_range(0..same.len())];
                        let y = same[rng.gen_range(0..same.len())];
                        placed = Some((BatchOp::HMult(meta[x].0, meta[y].0), level, true));
                    }
                    "hadd" => {
                        // Two operands with equal level *and* scale kind.
                        let i = rng.gen_range(0..meta.len());
                        let (_, level, sq) = meta[i];
                        let same: Vec<usize> = (0..meta.len())
                            .filter(|&j| meta[j].1 == level && meta[j].2 == sq)
                            .collect();
                        let j = same[rng.gen_range(0..same.len())];
                        placed = Some((BatchOp::HAdd(meta[i].0, meta[j].0), level, sq));
                    }
                    "rescale" => {
                        // A squared-scale result with a level to drop.
                        let cands: Vec<usize> = (0..meta.len())
                            .filter(|&i| meta[i].2 && meta[i].1 >= 1)
                            .collect();
                        if cands.is_empty() {
                            continue;
                        }
                        let i = cands[rng.gen_range(0..cands.len())];
                        placed = Some((BatchOp::Rescale(meta[i].0), meta[i].1 - 1, false));
                    }
                    _ => {
                        let i = rng.gen_range(0..meta.len());
                        let steps = rng.gen_range(1usize..(slots_n / 2).max(2));
                        placed = Some((BatchOp::HRotate(meta[i].0, steps), meta[i].1, meta[i].2));
                    }
                }
                if placed.is_some() {
                    break;
                }
            }
            let (op, level, squared) = placed.expect("hrotate always legal");
            let slot = prog.try_push(op).expect("random programs are legal");
            meta.push((slot, level, squared));
        }
        prog
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::ParamSet;
    use neo_error::ErrorKind;

    fn push(prog: &mut BatchProgram, op: BatchOp) -> Slot {
        prog.try_push(op).unwrap()
    }

    #[test]
    fn levels_propagate_through_rescale() {
        let mut prog = BatchProgram::new();
        let m = push(&mut prog, BatchOp::HMult(Slot::Input(0), Slot::Input(0)));
        let r = push(&mut prog, BatchOp::Rescale(m));
        push(&mut prog, BatchOp::HRotate(r, 3));
        assert_eq!(prog.op_levels(5), vec![5, 5, 4]);
    }

    #[test]
    fn forward_operand_rejected() {
        let mut prog = BatchProgram::new();
        let err = prog.try_push(BatchOp::Rescale(Slot::Op(2))).unwrap_err();
        assert_eq!(err.kind(), ErrorKind::InvalidParams);
        assert!(prog.ops.is_empty());
    }

    #[test]
    fn random_programs_are_legal() {
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(42);
        for seed in 0..10usize {
            let prog = BatchProgram::random(&mut rng, 3, 12 + seed, 4, 1 << 8);
            let levels = prog.op_levels(4);
            assert_eq!(levels.len(), prog.ops.len());
            // Rescales never run at level 0.
            for (op, &lv) in prog.ops.iter().zip(&levels) {
                if matches!(op, BatchOp::Rescale(_)) {
                    assert!(lv >= 1);
                }
            }
        }
    }

    #[test]
    fn appended_programs_are_independent() {
        let p = ParamSet::C.params();
        let cfg = CostConfig::neo();
        let mut prog = BatchProgram::new();
        let m = push(&mut prog, BatchOp::HMult(Slot::Input(0), Slot::Input(1)));
        push(&mut prog, BatchOp::Rescale(m));
        let single = prog.kernel_graph(&p, 10, &cfg);
        let mut g = OpGraph::new();
        prog.append_kernel_graph(&mut g, &p, 10, &cfg, 0);
        prog.append_kernel_graph(&mut g, &p, 10, &cfg, prog.ops.len());
        // Disjoint union: no edge crosses the two appended programs.
        assert_eq!(g.len(), 2 * single.len());
        assert_eq!(g.edge_count(), 2 * single.edge_count());
    }

    #[test]
    fn plan_sweep_is_site_gated() {
        for site in ["ntt_plan", "ntt_forward", "ntt_inverse", "ntt_stage"] {
            assert!(sweeps_plan_cache(Some(site)), "{site}");
        }
        assert!(!sweeps_plan_cache(Some("tcu_gemm")));
        assert!(!sweeps_plan_cache(Some("ckks_op")));
        assert!(!sweeps_plan_cache(None));
    }

    #[test]
    fn kernel_graph_links_producers() {
        let p = ParamSet::C.params();
        let cfg = CostConfig::neo();
        let mut prog = BatchProgram::new();
        let m = push(&mut prog, BatchOp::HMult(Slot::Input(0), Slot::Input(1)));
        push(&mut prog, BatchOp::Rescale(m));
        let g = prog.kernel_graph(&p, 10, &cfg);
        let single_m = crate::sched::op_graph(&p, 10, Operation::HMult, &cfg);
        let single_r = crate::sched::op_graph(&p, 10, Operation::Rescale, &cfg);
        assert_eq!(g.len(), single_m.len() + single_r.len());
        // One extra edge ties the rescale's first kernel to the hmult's
        // exit kernel.
        assert_eq!(
            g.edge_count(),
            single_m.edge_count() + single_r.edge_count() + 1
        );
    }
}
