//! The KLSS key-switching method (Kim–Lee–Seo–Song, CRYPTO'23), as used by
//! Neo: Mod Up → NTT → IP → INTT → Recover Limbs → Mod Down, with the bulk
//! of the work in the small auxiliary basis `R_T` (Section 2.2, Fig. 5).
//!
//! Correctness sketch: the ciphertext digit `h_j` (centered, `|h_j| ≤ D_j/2`)
//! and the key digits `[K_j]_{E_ĵ}` (centered, `≤ E_ĵ/2`) are converted
//! *exactly* into `R_T`. The inner product
//! `G_ĵ = Σ_j h_j · [K_j]_{E_ĵ}` then has coefficients bounded by
//! `β·N·B·B̃/4 < T/2` (the Eq. 4 budget), so its `R_T` residues determine
//! the integer polynomial exactly, and *Recover Limbs* (exact centered
//! BConv of each `G_ĵ` into its own digit's limbs of `R_PQ_l`) reconstructs
//! `Σ_j h_j·K_j mod PQ_l` — the same quantity the Hybrid method computes,
//! at lower cost.

use super::{check_keyswitch_input, mod_down};
use crate::context::CkksContext;
use crate::keys::{digit_ranges, KlssKey};
use neo_error::NeoError;
use neo_math::{Domain, RnsPoly};
use rayon::prelude::*;

/// Switches `d` (coefficient domain, `level + 1` limbs) using a KLSS key:
/// returns `(u0, u1)` in coefficient domain with `u0 + u1·s ≈ d·target`.
///
/// # Errors
///
/// [`NeoError::ParameterMismatch`] if `d` is in NTT domain,
/// [`NeoError::LevelMismatch`] if its limb count disagrees with the key,
/// [`NeoError::KeySwitchKeyMissing`] if the parameter set has no KLSS
/// configuration.
pub fn keyswitch_klss(
    ctx: &CkksContext,
    key: &KlssKey,
    d: &RnsPoly,
) -> Result<(RnsPoly, RnsPoly), NeoError> {
    let level = key.level;
    check_keyswitch_input(d, level)?;
    let params = ctx.params();
    let kcfg = params.klss.ok_or_else(|| {
        NeoError::key_missing(level, "klss", "parameter set has no KLSS configuration")
    })?;
    let q_primes = &ctx.q_primes()[..=level];
    let t_primes = ctx.t_primes().to_vec();
    let t_moduli = ctx.t_moduli().to_vec();
    let qp = ctx.qp_moduli(level);
    let qp_primes = ctx.qp_primes(level);
    let n = d.degree();
    let ranges = digit_ranges(params.alpha(), level + 1);
    let dnum = ranges.len();
    let _s = neo_trace::span!("keyswitch.klss", level = level, dnum = dnum);

    // --- Mod Up: exact conversion of each digit into R_T, then NTT. ---
    // Digits are independent, so the conversions fan out across the pool.
    let xs: Vec<Result<RnsPoly, NeoError>> = ranges
        .par_iter()
        .map(|r| -> Result<RnsPoly, NeoError> {
            let digit: Vec<Vec<u64>> = r.clone().map(|i| d.limb(i).to_vec()).collect();
            let digit_primes: Vec<u64> = q_primes[r.clone()].to_vec();
            let table = ctx.bconv_table(&digit_primes, &t_primes);
            let conv = table.convert_exact(&digit);
            let mut x = RnsPoly::from_limbs(conv, Domain::Coeff).expect("valid limbs");
            ctx.try_ntt_forward(&mut x, &t_moduli)?;
            Ok(x)
        })
        .collect();
    let xs: Vec<RnsPoly> = xs.into_iter().collect::<Result<_, _>>()?;

    // --- IP: for each output digit ĵ, accumulate over β input digits. ---
    // --- INTT and Recover Limbs per output digit. ---
    // The gadget factor ẽ_ĵ = Ê_ĵ·[Ê_ĵ⁻¹]_{E_ĵ} is ≡ 1 on digit ĵ's own
    // limbs and ≡ 0 on every other limb of R_PQ, so recovering G_ĵ only
    // writes its own α̃ limbs — this is why Table 2 counts Recover Limbs
    // as 2·α'·(l+α) rather than 2·β̃·α'·(l+α).
    let key_ranges = digit_ranges(kcfg.alpha_tilde, qp.len());
    // Output digits write disjoint limb ranges of the result, so each
    // (IP, INTT, Recover Limbs) chain runs on its own worker; the recovered
    // limbs are stitched into `result` afterwards.
    let recovered: Vec<Result<[Vec<Vec<u64>>; 2], NeoError>> = key_ranges
        .par_iter()
        .enumerate()
        .map(|(jj, range)| -> Result<[Vec<Vec<u64>>; 2], NeoError> {
            let digit_primes: Vec<u64> = qp_primes[range.clone()].to_vec();
            let table = ctx.bconv_table(&t_primes, &digit_primes);
            let recover = |c: usize| -> Result<Vec<Vec<u64>>, NeoError> {
                let mut acc = RnsPoly::zero(n, t_moduli.len(), Domain::Ntt);
                for (j, x) in xs.iter().enumerate() {
                    acc.mul_acc_assign(x, &key.digits[j][jj][c], &t_moduli);
                }
                ctx.try_ntt_inverse(&mut acc, &t_moduli)?;
                // Exact centered BConv of G_ĵ into digit ĵ's limbs.
                Ok(table.convert_exact(acc.limbs()))
            };
            Ok([recover(0)?, recover(1)?])
        })
        .collect();
    let recovered: Vec<[Vec<Vec<u64>>; 2]> = recovered.into_iter().collect::<Result<_, _>>()?;
    let mut result = [
        RnsPoly::zero(n, qp.len(), Domain::Coeff),
        RnsPoly::zero(n, qp.len(), Domain::Coeff),
    ];
    for (range, convs) in key_ranges.iter().zip(recovered) {
        for (res, conv) in result.iter_mut().zip(convs) {
            for (limb_out, limb_idx) in conv.into_iter().zip(range.clone()) {
                res.limb_mut(limb_idx).copy_from_slice(&limb_out);
            }
        }
    }
    let [r0, r1] = result;
    Ok((mod_down(ctx, &r0, level)?, mod_down(ctx, &r1, level)?))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::keys::{KeyChest, KeyTarget, SecretKey};
    use crate::keyswitch::hybrid::keyswitch_hybrid;
    use crate::params::CkksParams;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use std::sync::Arc;

    fn chest() -> (Arc<CkksContext>, KeyChest) {
        let ctx = Arc::new(CkksContext::new(CkksParams::test_tiny()).unwrap());
        let mut rng = StdRng::seed_from_u64(17);
        let sk = SecretKey::generate(&ctx, &mut rng);
        (ctx.clone(), KeyChest::new(ctx, sk, 18))
    }

    #[test]
    fn klss_keyswitch_phase_is_d_times_target() {
        let (ctx, chest) = chest();
        let level = 4;
        let q = ctx.q_moduli(level).to_vec();
        let d_coeffs: Vec<i64> = (0..ctx.degree() as i64).map(|i| (i % 23) - 11).collect();
        let d = RnsPoly::from_signed(&d_coeffs, &q);
        let key = chest.klss_key(level, KeyTarget::Relin).unwrap();
        let (u0, u1) = keyswitch_klss(&ctx, &key, &d).unwrap();
        let s = chest.secret_key().poly_ntt(&ctx, &q);
        let mut u1n = u1.clone();
        ctx.ntt_forward(&mut u1n, &q);
        u1n.mul_pointwise_assign(&s, &q);
        let mut phase = u0.clone();
        ctx.ntt_forward(&mut phase, &q);
        phase.add_assign(&u1n, &q);
        let mut s2 = s.clone();
        s2.mul_pointwise_assign(&s, &q);
        let mut dn = d.clone();
        ctx.ntt_forward(&mut dn, &q);
        dn.mul_pointwise_assign(&s2, &q);
        phase.sub_assign(&dn, &q);
        ctx.ntt_inverse(&mut phase, &q);
        let norm = phase.centered_inf_norm_limb0(&q[0]);
        assert!(norm < 1 << 20, "KLSS keyswitch error too large: {norm}");
    }

    #[test]
    fn klss_matches_hybrid_up_to_noise() {
        // Both methods compute u0 + u1*s ≈ d*s²; their *difference in
        // phase* must be small even though the raw outputs differ.
        let (ctx, chest) = chest();
        let level = 3;
        let q = ctx.q_moduli(level).to_vec();
        let d_coeffs: Vec<i64> = (0..ctx.degree() as i64).map(|i| (i % 11) - 5).collect();
        let d = RnsPoly::from_signed(&d_coeffs, &q);
        let hk = chest.hybrid_key(level, KeyTarget::Relin);
        let kk = chest.klss_key(level, KeyTarget::Relin).unwrap();
        let (h0, h1) = keyswitch_hybrid(&ctx, &hk, &d).unwrap();
        let (k0, k1) = keyswitch_klss(&ctx, &kk, &d).unwrap();
        let s = chest.secret_key().poly_ntt(&ctx, &q);
        let phase = |u0: &RnsPoly, u1: &RnsPoly| {
            let mut u1n = u1.clone();
            ctx.ntt_forward(&mut u1n, &q);
            u1n.mul_pointwise_assign(&s, &q);
            let mut p = u0.clone();
            ctx.ntt_forward(&mut p, &q);
            p.add_assign(&u1n, &q);
            p
        };
        let mut diff = phase(&h0, &h1);
        diff.sub_assign(&phase(&k0, &k1), &q);
        ctx.ntt_inverse(&mut diff, &q);
        let norm = diff.centered_inf_norm_limb0(&q[0]);
        assert!(norm < 1 << 20, "methods disagree beyond noise: {norm}");
    }

    #[test]
    fn klss_galois_target() {
        // Keyswitch with a Galois target: u0 + u1*s ≈ d * τ_g(s).
        let (ctx, chest) = chest();
        let level = 2;
        let g = 5usize;
        let q = ctx.q_moduli(level).to_vec();
        let d_coeffs: Vec<i64> = (0..ctx.degree() as i64).map(|i| (i % 7) - 3).collect();
        let d = RnsPoly::from_signed(&d_coeffs, &q);
        let key = chest.klss_key(level, KeyTarget::Galois(g)).unwrap();
        let (u0, u1) = keyswitch_klss(&ctx, &key, &d).unwrap();
        let s_rot = {
            let s = RnsPoly::from_signed(chest.secret_key().coeffs(), &q);
            let mut r = s.automorphism(g, &q);
            ctx.ntt_forward(&mut r, &q);
            r
        };
        let s = chest.secret_key().poly_ntt(&ctx, &q);
        let mut u1n = u1.clone();
        ctx.ntt_forward(&mut u1n, &q);
        u1n.mul_pointwise_assign(&s, &q);
        let mut phase = u0.clone();
        ctx.ntt_forward(&mut phase, &q);
        phase.add_assign(&u1n, &q);
        let mut dn = d.clone();
        ctx.ntt_forward(&mut dn, &q);
        dn.mul_pointwise_assign(&s_rot, &q);
        phase.sub_assign(&dn, &q);
        ctx.ntt_inverse(&mut phase, &q);
        let norm = phase.centered_inf_norm_limb0(&q[0]);
        assert!(norm < 1 << 20, "Galois keyswitch error too large: {norm}");
    }
}
