//! The Hybrid key-switching method (the pre-KLSS state of the art).

use super::{check_keyswitch_input, mod_down};
use crate::context::CkksContext;
use crate::keys::{digit_ranges, HybridKey};
use neo_error::NeoError;
use neo_math::{Domain, RnsPoly};
use rayon::prelude::*;

/// Switches `d` (coefficient domain, `level + 1` limbs) using a Hybrid
/// key: returns `(u0, u1)` in coefficient domain with
/// `u0 + u1·s ≈ d · target`.
///
/// # Errors
///
/// [`NeoError::ParameterMismatch`] if `d` is in NTT domain,
/// [`NeoError::LevelMismatch`] if its limb count disagrees with the
/// key's level.
pub fn keyswitch_hybrid(
    ctx: &CkksContext,
    key: &HybridKey,
    d: &RnsPoly,
) -> Result<(RnsPoly, RnsPoly), NeoError> {
    let level = key.level;
    check_keyswitch_input(d, level)?;
    let qp = ctx.qp_moduli(level);
    let qp_primes = ctx.qp_primes(level);
    let q_primes = &ctx.q_primes()[..=level];
    let ranges = digit_ranges(ctx.params().alpha(), level + 1);
    let n = d.degree();
    let dnum = ranges.len();
    let _s = neo_trace::span!("keyswitch.hybrid", level = level, dnum = dnum);
    // Mod Up each digit independently (approximate BConv into the
    // complement basis, reassemble, forward NTT) — digits never touch each
    // other's limbs, so the whole stage fans out across the pool.
    let xs: Vec<Result<RnsPoly, NeoError>> = ranges
        .par_iter()
        .map(|r| -> Result<RnsPoly, NeoError> {
            // Digit limbs straight from d.
            let digit: Vec<Vec<u64>> = r.clone().map(|i| d.limb(i).to_vec()).collect();
            let digit_primes: Vec<u64> = q_primes[r.clone()].to_vec();
            let complement: Vec<u64> = qp_primes
                .iter()
                .enumerate()
                .filter(|(i, _)| !r.contains(i))
                .map(|(_, &p)| p)
                .collect();
            let table = ctx.bconv_table(&digit_primes, &complement);
            let conv = table.convert_approx(&digit);
            // Reassemble in qp order.
            let mut limbs: Vec<Vec<u64>> = Vec::with_capacity(qp.len());
            let mut conv_iter = conv.into_iter();
            let mut digit_iter = digit.into_iter();
            for i in 0..qp.len() {
                if r.contains(&i) {
                    limbs.push(digit_iter.next().expect("digit limb"));
                } else {
                    limbs.push(conv_iter.next().expect("converted limb"));
                }
            }
            let mut x = RnsPoly::from_limbs(limbs, Domain::Coeff).expect("valid limbs");
            ctx.try_ntt_forward(&mut x, &qp)?;
            Ok(x)
        })
        .collect();
    let xs: Vec<RnsPoly> = xs.into_iter().collect::<Result<_, _>>()?;
    // Inner product with the digit key (accumulation stays in digit order,
    // so the output is bit-identical to the sequential walk).
    let mut acc0 = RnsPoly::zero(n, qp.len(), Domain::Ntt);
    let mut acc1 = RnsPoly::zero(n, qp.len(), Domain::Ntt);
    for (j, x) in xs.iter().enumerate() {
        acc0.mul_acc_assign(x, &key.digits[j][0], &qp);
        acc1.mul_acc_assign(x, &key.digits[j][1], &qp);
    }
    ctx.try_ntt_inverse(&mut acc0, &qp)?;
    ctx.try_ntt_inverse(&mut acc1, &qp)?;
    Ok((mod_down(ctx, &acc0, level)?, mod_down(ctx, &acc1, level)?))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::keys::{KeyChest, KeyTarget, SecretKey};
    use crate::params::CkksParams;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use std::sync::Arc;

    /// Full algebraic check: keyswitch(d) under target s² must satisfy
    /// u0 + u1·s ≈ d·s² with small error (relative to the modulus).
    #[test]
    fn hybrid_keyswitch_phase_is_d_times_target() {
        let ctx = Arc::new(CkksContext::new(CkksParams::test_tiny()).unwrap());
        let mut rng = StdRng::seed_from_u64(7);
        let sk = SecretKey::generate(&ctx, &mut rng);
        let chest = KeyChest::new(ctx.clone(), sk, 8);
        let level = 3;
        let q = ctx.q_moduli(level).to_vec();
        // A *small* input d keeps the keyswitch error small relative to q0.
        let d_coeffs: Vec<i64> = (0..ctx.degree() as i64).map(|i| (i % 17) - 8).collect();
        let d = RnsPoly::from_signed(&d_coeffs, &q);
        let key = chest.hybrid_key(level, KeyTarget::Relin);
        let (u0, u1) = keyswitch_hybrid(&ctx, &key, &d).unwrap();
        // phase = u0 + u1*s  (computed in NTT domain).
        let s = chest.secret_key().poly_ntt(&ctx, &q);
        let mut u1n = u1.clone();
        ctx.ntt_forward(&mut u1n, &q);
        u1n.mul_pointwise_assign(&s, &q);
        let mut phase = u0.clone();
        ctx.ntt_forward(&mut phase, &q);
        phase.add_assign(&u1n, &q);
        // expected = d * s².
        let mut s2 = s.clone();
        s2.mul_pointwise_assign(&s, &q);
        let mut dn = d.clone();
        ctx.ntt_forward(&mut dn, &q);
        dn.mul_pointwise_assign(&s2, &q);
        phase.sub_assign(&dn, &q);
        ctx.ntt_inverse(&mut phase, &q);
        // Residual must be small (keyswitch noise ~ N * B_err * digits / P).
        let norm = phase.centered_inf_norm_limb0(&q[0]);
        assert!(norm < 1 << 20, "keyswitch error too large: {norm}");
    }
}
