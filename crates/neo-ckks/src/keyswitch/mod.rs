//! Key switching — the operation the whole paper optimizes.
//!
//! Both methods take a polynomial `d` at level `l` (coefficient domain)
//! and a key re-encrypting `target` under `s`, and return a ciphertext
//! pair `(u0, u1)` with `u0 + u1·s ≈ d · target`:
//!
//! * [`hybrid::keyswitch_hybrid`] — digit decomposition, Mod Up to
//!   `R_PQ_l`, inner product with the digit keys, Mod Down by `P`;
//! * [`klss::keyswitch_klss`] — the KLSS method: exact Mod Up into the
//!   small auxiliary basis `R_T`, the `β × β̃` inner product over `R_T`,
//!   *Recover Limbs* back into `R_PQ_l`, Mod Down (Fig. 5).

pub mod hybrid;
pub mod klss;

use crate::context::CkksContext;
use neo_error::NeoError;
use neo_math::{Domain, RnsPoly};

/// Shared operand validation for both key-switching methods: the input
/// must be in coefficient domain with exactly the key level's limb count.
pub(crate) fn check_keyswitch_input(d: &RnsPoly, level: usize) -> Result<(), NeoError> {
    if d.domain() != Domain::Coeff {
        return Err(NeoError::parameter_mismatch(
            "keyswitch",
            "input must be in coefficient domain",
        ));
    }
    if d.limb_count() != level + 1 {
        return Err(NeoError::level_mismatch(
            "keyswitch",
            d.limb_count().saturating_sub(1),
            level,
        ));
    }
    Ok(())
}

/// Mod Down by `P`: takes a coefficient-domain polynomial over the
/// `R_PQ_l` basis (`l+1` data limbs then `K` special limbs) and returns
/// `round(x / P)` over the data limbs.
///
/// # Errors
///
/// [`NeoError::ParameterMismatch`] if the limb count is not
/// `level + 1 + K`.
pub(crate) fn mod_down(
    ctx: &CkksContext,
    poly: &RnsPoly,
    level: usize,
) -> Result<RnsPoly, NeoError> {
    let k = ctx.p_primes().len();
    if poly.limb_count() != level + 1 + k {
        return Err(NeoError::parameter_mismatch(
            "mod_down",
            format!(
                "expected {} R_PQ limbs at level {level}, got {}",
                level + 1 + k,
                poly.limb_count()
            ),
        ));
    }
    let p_part: Vec<Vec<u64>> = (level + 1..level + 1 + k)
        .map(|i| poly.limb(i).to_vec())
        .collect();
    let table = ctx.bconv_table(ctx.p_primes(), &ctx.q_primes()[..=level]);
    let conv = table.convert_approx(&p_part);
    let q_moduli = ctx.q_moduli(level);
    let mut out = RnsPoly::zero(poly.degree(), level + 1, neo_math::Domain::Coeff);
    for (i, m) in q_moduli.iter().enumerate() {
        let inv = ctx.p_inv_mod_q(i);
        let dst = out.limb_mut(i);
        for (c, d) in dst.iter_mut().enumerate() {
            let diff = m.sub(poly.limb(i)[c], conv[i][c]);
            *d = m.mul(diff, inv);
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::CkksParams;
    use neo_math::{BigUint, Domain};

    #[test]
    fn mod_down_divides_by_p() {
        let ctx = CkksContext::new(CkksParams::test_tiny()).unwrap();
        let level = 2;
        let qp = ctx.qp_moduli(level);
        // Build x = P * v for a small v: mod_down must return exactly v.
        let p_big = BigUint::product(ctx.p_primes());
        let v = 12_345u64;
        let x_int = p_big.mul_u64(v);
        let limbs: Vec<Vec<u64>> = qp
            .iter()
            .map(|m| vec![x_int.rem_u64(m.value()); ctx.degree()])
            .collect();
        let poly = RnsPoly::from_limbs(limbs, Domain::Coeff).unwrap();
        let out = mod_down(&ctx, &poly, level).unwrap();
        for (i, m) in ctx.q_moduli(level).iter().enumerate() {
            assert!(out.limb(i).iter().all(|&c| c == m.reduce(v)), "limb {i}");
        }
    }

    #[test]
    fn mod_down_rounds_small_remainder() {
        // x = P*v + r with small r: result should be v or v±1 (rounding
        // noise), never off by more.
        let ctx = CkksContext::new(CkksParams::test_tiny()).unwrap();
        let level = 1;
        let qp = ctx.qp_moduli(level);
        let p_big = BigUint::product(ctx.p_primes());
        let v = 999u64;
        let x_int = p_big.mul_u64(v).add_u64(12_345);
        let limbs: Vec<Vec<u64>> = qp
            .iter()
            .map(|m| vec![x_int.rem_u64(m.value()); ctx.degree()])
            .collect();
        let poly = RnsPoly::from_limbs(limbs, Domain::Coeff).unwrap();
        let out = mod_down(&ctx, &poly, level).unwrap();
        let m0 = &ctx.q_moduli(level)[0];
        let got = out.limb(0)[0];
        let diff = m0.to_signed(m0.sub(got, m0.reduce(v))).abs();
        assert!(diff <= ctx.p_primes().len() as i64 + 1, "diff {diff}");
    }
}
