//! [`ExecPlan`] — the typed execution plan the `neo-plan` autotuner
//! produces and [`crate::FheEngine`] consumes.
//!
//! A plan bundles every performance-relevant knob that used to travel
//! through scattered per-knob setters — key-switching method,
//! `WordSize_T`, kernel fusion, stream count, ABFT verify policy,
//! compute backend — plus the simulated makespan the planner predicted
//! for the workload it was tuned on. The planner itself (the sweep over
//! this space through `neo_sched::simulate_best`, and the `PlanStore`
//! cache) lives in the `neo-plan` crate; the type is defined here so the
//! engine can accept a plan without a dependency cycle.
//!
//! Only the key-switching method changes ciphertext *bits* (both
//! methods decrypt to the same values; the limb data differs). Fusion,
//! stream count, `WordSize_T` and the verify policy are timing-side
//! knobs: host execution under any of their settings is bit-identical.

use crate::params::{CkksParams, KsMethod};
use neo_fault::VerifyPolicy;
use neo_math::BackendKind;

/// A tuned execution configuration: the winning point of the planner's
/// sweep, plus the simulated makespan that made it win.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ExecPlan {
    /// Key-switching method the plan was tuned for. The only knob that
    /// changes ciphertext bits (not values).
    pub method: KsMethod,
    /// `WordSize_T` the KLSS pricing used, when [`Self::method`] is
    /// KLSS. A pricing-side knob: the functional auxiliary basis is
    /// fixed by the parameter set, so host execution ignores it.
    pub word_size_t: Option<u32>,
    /// Fuse element-wise kernel chains before scheduling.
    pub fusion: bool,
    /// Stream count the simulator found best (`1` = serial execution on
    /// the host executor).
    pub streams: usize,
    /// ABFT verification policy priced into — and installed by — the
    /// plan.
    pub verify: VerifyPolicy,
    /// Compute backend the plan was tuned on. A cached plan only
    /// replays on the backend it was priced for; installing it on an
    /// engine built over a different backend is a typed
    /// [`crate::NeoError::ParameterMismatch`].
    pub backend: BackendKind,
    /// The simulated makespan of the plan's workload under this
    /// configuration, in seconds (0.0 for hand-built plans).
    pub predicted_makespan_s: f64,
}

impl ExecPlan {
    /// The all-defaults plan for `p`: the parameter set's own
    /// key-switching method, no fusion, one stream, verification off.
    /// This is what unplanned serial execution does, and the baseline
    /// `plan_bench` compares the planner's choice against.
    pub fn unplanned(p: &CkksParams) -> Self {
        Self {
            method: if p.klss.is_some() {
                KsMethod::Klss
            } else {
                KsMethod::Hybrid
            },
            word_size_t: p.klss.map(|k| k.word_size_t),
            fusion: false,
            streams: 1,
            verify: VerifyPolicy::Off,
            backend: p.backend,
            predicted_makespan_s: 0.0,
        }
    }

    /// [`Self::unplanned`] with the key-switching method pinned — the
    /// reference configuration for bit-identity checks (only the method
    /// affects ciphertext bits, so this is the serial default run of
    /// any plan sharing `method`).
    pub fn pinned(p: &CkksParams, method: KsMethod) -> Self {
        Self {
            method,
            ..Self::unplanned(p)
        }
    }

    /// Whether execution under this plan should use the parallel
    /// (multi-stream) host executor.
    pub fn parallel(&self) -> bool {
        self.streams > 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unplanned_tracks_param_defaults() {
        let p = CkksParams::test_small();
        let plan = ExecPlan::unplanned(&p);
        assert_eq!(plan.method, KsMethod::Klss, "test_small carries KLSS");
        assert_eq!(plan.word_size_t, Some(48));
        assert!(!plan.fusion && plan.streams == 1 && !plan.parallel());
        assert_eq!(plan.backend, p.backend);

        let hybrid = ExecPlan::pinned(&p, KsMethod::Hybrid);
        assert_eq!(hybrid.method, KsMethod::Hybrid);
        assert_eq!(hybrid.streams, 1);
    }
}
