//! Key material: secret/public keys, Hybrid key-switching keys, and the
//! KLSS decomposed keys (Section 2.2).
//!
//! Key-switching keys are *level-specific* (the gadget factors involve
//! `Q_l`), so they are generated on demand per `(level, target)` and
//! cached in a [`KeyChest`]. A production library would pregenerate a
//! level-agnostic variant; for a reproduction, on-demand generation keeps
//! the algebra transparent and testable.

use crate::context::CkksContext;
use crate::params::KsMethod;
use neo_error::NeoError;
use neo_fault::splitmix64;
use neo_math::{Domain, Modulus, RnsBasis, RnsPoly};
use parking_lot::RwLock;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::HashMap;
use std::ops::Range;
use std::sync::Arc;

/// A ternary secret key.
#[derive(Debug, Clone)]
pub struct SecretKey {
    coeffs: Vec<i64>,
}

impl SecretKey {
    /// Samples a fresh ternary secret.
    pub fn generate<R: Rng + ?Sized>(ctx: &CkksContext, rng: &mut R) -> Self {
        Self {
            coeffs: ctx.sample_ternary(rng),
        }
    }

    /// Rehydrates a secret key from stored ternary coefficients (the
    /// persistent-store path). The caller is responsible for having
    /// integrity-checked the bytes; this only revalidates the ternary
    /// range so a corrupt-but-checksummed record cannot smuggle large
    /// coefficients into the noise analysis.
    ///
    /// # Errors
    ///
    /// [`NeoError::FaultDetected`] if any coefficient is outside
    /// `{-1, 0, 1}`.
    pub fn from_coeffs(coeffs: Vec<i64>) -> Result<Self, NeoError> {
        if let Some(c) = coeffs.iter().find(|c| c.abs() > 1) {
            return Err(NeoError::fault_detected(
                "store_record",
                format!("secret-key coefficient {c} outside the ternary range"),
            ));
        }
        Ok(Self { coeffs })
    }

    /// The ternary coefficients.
    pub fn coeffs(&self) -> &[i64] {
        &self.coeffs
    }

    /// The secret as an NTT-domain polynomial over the given moduli.
    pub fn poly_ntt(&self, ctx: &CkksContext, moduli: &[Modulus]) -> RnsPoly {
        let mut s = RnsPoly::from_signed(&self.coeffs, moduli);
        ctx.ntt_forward(&mut s, moduli);
        s
    }
}

/// A public encryption key `(p0, p1) = (-a·s + e, a)` over the full data
/// chain, stored in NTT domain.
#[derive(Debug, Clone)]
pub struct PublicKey {
    p0: RnsPoly,
    p1: RnsPoly,
}

impl PublicKey {
    /// Generates the public key for `sk`.
    pub fn generate<R: Rng + ?Sized>(ctx: &CkksContext, sk: &SecretKey, rng: &mut R) -> Self {
        let moduli = ctx.q_moduli(ctx.params().max_level).to_vec();
        let s = sk.poly_ntt(ctx, &moduli);
        let a = ctx.sample_uniform(rng, &moduli);
        let mut e = RnsPoly::from_signed(&ctx.sample_gaussian(rng), &moduli);
        ctx.ntt_forward(&mut e, &moduli);
        let mut p0 = a.clone();
        p0.mul_pointwise_assign(&s, &moduli);
        p0.neg_assign(&moduli);
        p0.add_assign(&e, &moduli);
        Self { p0, p1: a }
    }

    /// `p0` truncated to `level + 1` limbs (NTT limbs are independent).
    pub fn p0_at(&self, level: usize) -> RnsPoly {
        let mut p = self.p0.clone();
        p.truncate_limbs(level + 1);
        p
    }

    /// `p1` truncated to `level + 1` limbs.
    pub fn p1_at(&self, level: usize) -> RnsPoly {
        let mut p = self.p1.clone();
        p.truncate_limbs(level + 1);
        p
    }
}

/// What a key-switching key re-encrypts under `s`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum KeyTarget {
    /// `s²` — relinearization after HMULT.
    Relin,
    /// `τ_g(s)` for the Galois exponent `g` — HROTATE / conjugation.
    Galois(usize),
}

impl KeyTarget {
    /// Stable integer encoding for persistence: `0` is [`KeyTarget::Relin`],
    /// odd codes are [`KeyTarget::Galois`] with the exponent in the high
    /// bits. Even non-zero codes are unused (and rejected by
    /// [`KeyTarget::from_code`]) so a single flipped bit cannot silently
    /// turn one valid target into another of a different kind.
    pub fn code(self) -> u64 {
        match self {
            KeyTarget::Relin => 0,
            KeyTarget::Galois(g) => 1 | ((g as u64) << 1),
        }
    }

    /// Decodes [`KeyTarget::code`]; `None` for unused encodings.
    pub fn from_code(code: u64) -> Option<Self> {
        match code {
            0 => Some(KeyTarget::Relin),
            c if c & 1 == 1 => Some(KeyTarget::Galois((c >> 1) as usize)),
            _ => None,
        }
    }
}

/// Human-readable form of a key target for error messages.
pub(crate) fn describe_target(target: KeyTarget) -> String {
    match target {
        KeyTarget::Relin => "relin".to_string(),
        KeyTarget::Galois(g) => format!("galois({g})"),
    }
}

/// A Hybrid key-switching key at one level: `β` digit keys over `R_PQ_l`
/// in NTT domain.
#[derive(Debug, Clone)]
pub struct HybridKey {
    /// `digits[j] = [evk_j0, evk_j1]`.
    pub digits: Vec<[RnsPoly; 2]>,
    /// The level this key was generated for.
    pub level: usize,
}

/// A KLSS key-switching key at one level: `β × β̃` digit keys over `R_T`
/// in NTT domain. (The gadget reconstitution factors `ẽ_ĵ` are 1 on each
/// digit's own limbs and 0 elsewhere, so no factor table is needed —
/// Recover Limbs writes each digit's limbs directly.)
#[derive(Debug, Clone)]
pub struct KlssKey {
    /// `digits[j][ĵ] = [k0, k1]` over the `T` basis, NTT domain.
    pub digits: Vec<Vec<[RnsPoly; 2]>>,
    /// The level this key was generated for.
    pub level: usize,
}

/// Gadget factors `g_j = D̂_j · [D̂_j⁻¹]_{D_j}` reduced mod every
/// evaluation limb, for digits given as ranges over `gadget_primes`.
///
/// A single formula covers all limbs: `g_j mod m = (D̂_j mod m) · (V mod m)`
/// with `V = [D̂_j⁻¹]_{D_j}` reconstructed exactly (CRT over the digit).
pub(crate) fn gadget_factors(
    gadget_primes: &[u64],
    ranges: &[Range<usize>],
    eval_moduli: &[Modulus],
) -> Vec<Vec<u64>> {
    ranges
        .iter()
        .map(|r| {
            let digit: Vec<u64> = gadget_primes[r.clone()].to_vec();
            let others: Vec<u64> = gadget_primes
                .iter()
                .enumerate()
                .filter(|(i, _)| !r.contains(i))
                .map(|(_, &p)| p)
                .collect();
            // V = [D̂_j⁻¹ mod D_j] via CRT over the digit primes.
            let digit_basis = RnsBasis::new(&digit).expect("digit basis");
            let residues: Vec<u64> = digit
                .iter()
                .map(|&d| {
                    let m = Modulus::new(d).expect("digit modulus");
                    let dhat = others.iter().fold(1u64, |acc, &p| m.mul(acc, m.reduce(p)));
                    m.inv(dhat).expect("coprime by construction")
                })
                .collect();
            let v = digit_basis.reconstruct(&residues);
            eval_moduli
                .iter()
                .map(|m| {
                    let dhat = others.iter().fold(1u64, |acc, &p| m.mul(acc, m.reduce(p)));
                    m.mul(dhat, v.rem_u64(m.value()))
                })
                .collect()
        })
        .collect()
}

/// The digit ranges of the ciphertext gadget at a level: `β` runs of `α`
/// over the `l+1` data limbs.
pub(crate) fn digit_ranges(alpha: usize, limbs: usize) -> Vec<Range<usize>> {
    (0..limbs.div_ceil(alpha))
        .map(|j| (j * alpha)..((j + 1) * alpha).min(limbs))
        .collect()
}

/// Salt separating the public `a`-part sampling stream from the error
/// stream, so `a`-parts can be regenerated without replaying error
/// sampling (the seed-compressed store path).
const A_STREAM_SALT: u64 = 0x517c_c1b7_2722_0a95;
/// Salt for the (secret) error sampling stream.
const E_STREAM_SALT: u64 = 0x2545_f491_4f6c_dd1d;

/// Holds the secret key and caches per-level key-switching material.
///
/// Every key-switching key is a *pure function* of
/// `(context, secret key, key_seed, level, target)`: each `(level,
/// target)` pair gets its own derived RNG streams (one for the public
/// `a`-parts, one for the errors), so generation order never changes the
/// material. This is what makes seed-compressed persistence possible —
/// a store can hold only the `b`-parts plus `key_seed` and regenerate the
/// `a`-parts bit-exactly, and a damaged record is always re-derivable
/// from seed while the secret key is alive.
pub struct KeyChest {
    ctx: Arc<CkksContext>,
    sk: SecretKey,
    key_seed: u64,
    hybrid: RwLock<HashMap<(usize, KeyTarget), Arc<HybridKey>>>,
    klss: RwLock<HashMap<(usize, KeyTarget), Arc<KlssKey>>>,
}

impl std::fmt::Debug for KeyChest {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("KeyChest").field("ctx", &self.ctx).finish()
    }
}

impl KeyChest {
    /// Wraps a secret key for on-demand evaluation-key generation.
    pub fn new(ctx: Arc<CkksContext>, sk: SecretKey, seed: u64) -> Self {
        Self {
            ctx,
            sk,
            key_seed: seed,
            hybrid: RwLock::new(HashMap::new()),
            klss: RwLock::new(HashMap::new()),
        }
    }

    /// The managed context.
    pub fn context(&self) -> &Arc<CkksContext> {
        &self.ctx
    }

    /// The secret key (tests and decryption).
    pub fn secret_key(&self) -> &SecretKey {
        &self.sk
    }

    /// The seed all per-key RNG streams derive from. A store persists
    /// this next to the `b`-parts; a chest rebuilt with the same seed
    /// (and secret key) regenerates every key bit-exactly.
    pub fn key_seed(&self) -> u64 {
        self.key_seed
    }

    /// The derived RNG for one `(level, target, stream)` triple.
    fn stream_rng(&self, level: usize, target: KeyTarget, salt: u64) -> StdRng {
        let mut z = self.key_seed ^ salt;
        z = splitmix64(z ^ (level as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15));
        z = splitmix64(z ^ target.code().wrapping_mul(0xff51_afd7_ed55_8ccd));
        StdRng::seed_from_u64(z)
    }

    /// The key-switch target polynomial in NTT domain over `moduli`.
    fn target_poly(&self, target: KeyTarget, moduli: &[Modulus]) -> RnsPoly {
        match target {
            KeyTarget::Relin => {
                let mut s = self.sk.poly_ntt(&self.ctx, moduli);
                let s2 = s.clone();
                s.mul_pointwise_assign(&s2, moduli);
                s
            }
            KeyTarget::Galois(g) => {
                let s = RnsPoly::from_signed(self.sk.coeffs(), moduli);
                let mut rot = s.automorphism(g, moduli);
                self.ctx.ntt_forward(&mut rot, moduli);
                rot
            }
        }
    }

    /// The Hybrid key for `(level, target)`, generated on first use.
    pub fn hybrid_key(&self, level: usize, target: KeyTarget) -> Arc<HybridKey> {
        if let Some(k) = self.hybrid.read().get(&(level, target)) {
            return k.clone();
        }
        let key = Arc::new(self.gen_hybrid(level, target));
        self.hybrid.write().insert((level, target), key.clone());
        key
    }

    /// The KLSS key for `(level, target)`, generated on first use.
    ///
    /// # Errors
    ///
    /// [`NeoError::KeySwitchKeyMissing`] if the parameter set has no KLSS
    /// configuration — the key cannot exist.
    pub fn klss_key(&self, level: usize, target: KeyTarget) -> Result<Arc<KlssKey>, NeoError> {
        if let Some(k) = self.klss.read().get(&(level, target)) {
            return Ok(k.clone());
        }
        let key = Arc::new(self.gen_klss(level, target)?);
        self.klss.write().insert((level, target), key.clone());
        Ok(key)
    }

    /// Whether the key for `(level, target)` is already in the cache for
    /// `method` — the lookup a strict key policy
    /// (`OpPolicy::require_warm_keys`) consults before refusing to
    /// generate on demand.
    pub fn has_key(&self, level: usize, target: KeyTarget, method: KsMethod) -> bool {
        match method {
            KsMethod::Hybrid => self.hybrid.read().contains_key(&(level, target)),
            KsMethod::Klss => self.klss.read().contains_key(&(level, target)),
        }
    }

    /// Generates (and caches) the key for `(level, target)` under
    /// `method`, so later lookups hit the cache even under a strict key
    /// policy.
    ///
    /// # Errors
    ///
    /// [`NeoError::KeySwitchKeyMissing`] if `method` is KLSS but the
    /// parameter set has no KLSS configuration.
    pub fn warm(&self, level: usize, target: KeyTarget, method: KsMethod) -> Result<(), NeoError> {
        match method {
            KsMethod::Hybrid => {
                self.hybrid_key(level, target);
            }
            KsMethod::Klss => {
                self.klss_key(level, target)?;
            }
        }
        Ok(())
    }

    /// Generates the raw digit key pairs `K_j` over `R_PQ_l` (NTT domain):
    /// `K_j0 + K_j1·s = e_j + P·g_j·target`.
    fn gen_digit_keys(&self, level: usize, target: KeyTarget) -> Vec<[RnsPoly; 2]> {
        let ctx = &self.ctx;
        let qp = ctx.qp_moduli(level);
        let q_primes = &ctx.q_primes()[..=level];
        let alpha = ctx.params().alpha();
        let ranges = digit_ranges(alpha, level + 1);
        let g = gadget_factors(q_primes, &ranges, &qp);
        let s = self.sk.poly_ntt(ctx, &qp);
        let tgt = self.target_poly(target, &qp);
        let mut a_rng = self.stream_rng(level, target, A_STREAM_SALT);
        let mut e_rng = self.stream_rng(level, target, E_STREAM_SALT);
        ranges
            .iter()
            .enumerate()
            .map(|(j, _)| {
                let a = ctx.sample_uniform(&mut a_rng, &qp);
                let mut e = RnsPoly::from_signed(&ctx.sample_gaussian(&mut e_rng), &qp);
                ctx.ntt_forward(&mut e, &qp);
                // evk0 = -a*s + e + (P*g_j)·tgt
                let mut k0 = a.clone();
                k0.mul_pointwise_assign(&s, &qp);
                k0.neg_assign(&qp);
                k0.add_assign(&e, &qp);
                // P mod q_i for data limbs; P ≡ 0 mod p limbs.
                let scal: Vec<u64> = qp
                    .iter()
                    .enumerate()
                    .map(|(i, m)| {
                        let p_mod = if i <= level { ctx.p_mod_q(i) } else { 0 };
                        m.mul(p_mod, g[j][i])
                    })
                    .collect();
                let mut pg_tgt = tgt.clone();
                pg_tgt.mul_scalar_per_limb_assign(&scal, &qp);
                k0.add_assign(&pg_tgt, &qp);
                [k0, a]
            })
            .collect()
    }

    fn gen_hybrid(&self, level: usize, target: KeyTarget) -> HybridKey {
        HybridKey {
            digits: self.gen_digit_keys(level, target),
            level,
        }
    }

    fn gen_klss(&self, level: usize, target: KeyTarget) -> Result<KlssKey, NeoError> {
        let raw = self.gen_digit_keys(level, target);
        self.klss_from_raw(level, target, raw)
    }

    /// Decomposes raw digit key pairs (NTT domain over `R_PQ_l`) into the
    /// KLSS `β × β̃` form — shared by on-demand generation and
    /// rebuild-from-store.
    fn klss_from_raw(
        &self,
        level: usize,
        target: KeyTarget,
        mut raw: Vec<[RnsPoly; 2]>,
    ) -> Result<KlssKey, NeoError> {
        let ctx = &self.ctx;
        let params = ctx.params();
        let kcfg = params.klss.ok_or_else(|| {
            NeoError::key_missing(
                level,
                describe_target(target),
                "parameter set has no KLSS configuration",
            )
        })?;
        let qp = ctx.qp_moduli(level);
        let qp_primes = ctx.qp_primes(level);
        let t_primes = ctx.t_primes().to_vec();
        let t_moduli = ctx.t_moduli().to_vec();
        // Raw digit keys, moved to coefficient domain for decomposition.
        for pair in raw.iter_mut() {
            for k in pair.iter_mut() {
                ctx.ntt_inverse(k, &qp);
            }
        }
        // Key digits: α̃-limb runs over the full qp chain.
        let key_ranges = digit_ranges(kcfg.alpha_tilde, level + 1 + params.special);
        let digits = raw
            .iter()
            .map(|pair| {
                key_ranges
                    .iter()
                    .map(|r| {
                        let digit_primes = qp_primes[r.clone()].to_vec();
                        let table = ctx.bconv_table(&digit_primes, &t_primes);
                        let mut out: Vec<RnsPoly> = pair
                            .iter()
                            .map(|k| {
                                let limbs: Vec<Vec<u64>> =
                                    r.clone().map(|i| k.limb(i).to_vec()).collect();
                                let conv = table.convert_exact(&limbs);
                                let mut p =
                                    RnsPoly::from_limbs(conv, Domain::Coeff).expect("valid limbs");
                                ctx.ntt_forward(&mut p, &t_moduli);
                                p
                            })
                            .collect();
                        let k1 = out.pop().expect("two components");
                        let k0 = out.pop().expect("two components");
                        [k0, k1]
                    })
                    .collect()
            })
            .collect();
        Ok(KlssKey { digits, level })
    }

    /// Drops cached keys for one method (memory control in long runs).
    pub fn clear_cache(&self, method: KsMethod) {
        match method {
            KsMethod::Hybrid => self.hybrid.write().clear(),
            KsMethod::Klss => self.klss.write().clear(),
        }
    }

    /// The `(level, target)` pairs currently cached for `method` — what a
    /// persistence layer enumerates when flushing warm keys to disk.
    pub fn cached_keys(&self, method: KsMethod) -> Vec<(usize, KeyTarget)> {
        let mut keys: Vec<_> = match method {
            KsMethod::Hybrid => self.hybrid.read().keys().copied().collect(),
            KsMethod::Klss => self.klss.read().keys().copied().collect(),
        };
        keys.sort_by_key(|&(level, target)| (level, target.code()));
        keys
    }

    /// Regenerates the public `a`-parts for `(level, target)` from the
    /// chest's seed alone — the other half of a seed-compressed KSK
    /// record. Bit-exact across processes: the `a`-stream is derived per
    /// `(key_seed, level, target)` and never consumed by anything else.
    pub fn regen_a_parts(&self, level: usize, target: KeyTarget) -> Vec<RnsPoly> {
        let ctx = &self.ctx;
        let qp = ctx.qp_moduli(level);
        let beta = digit_ranges(ctx.params().alpha(), level + 1).len();
        let mut a_rng = self.stream_rng(level, target, A_STREAM_SALT);
        (0..beta)
            .map(|_| ctx.sample_uniform(&mut a_rng, &qp))
            .collect()
    }

    /// The `b`-parts (`evk_j0`) of the raw digit keys for
    /// `(level, target)` — the only polynomials a seed-compressed store
    /// record has to persist. Served from the hybrid cache when warm;
    /// regenerated deterministically otherwise (KLSS keys cache only the
    /// decomposed form, so their raw `b`-parts are always regenerated).
    pub fn export_b_parts(&self, level: usize, target: KeyTarget) -> Vec<RnsPoly> {
        if let Some(k) = self.hybrid.read().get(&(level, target)) {
            return k.digits.iter().map(|pair| pair[0].clone()).collect();
        }
        self.gen_digit_keys(level, target)
            .into_iter()
            .map(|[k0, _]| k0)
            .collect()
    }

    /// Validates stored `b`-parts against the shape the context demands
    /// for `(level, target)`.
    fn check_b_parts(
        &self,
        level: usize,
        target: KeyTarget,
        b_parts: &[RnsPoly],
    ) -> Result<(), NeoError> {
        let ctx = &self.ctx;
        let qp = ctx.qp_moduli(level);
        let beta = digit_ranges(ctx.params().alpha(), level + 1).len();
        if b_parts.len() != beta {
            return Err(NeoError::fault_detected(
                "store_record",
                format!(
                    "{} level-{level} record has {} digits, context demands {beta}",
                    describe_target(target),
                    b_parts.len()
                ),
            ));
        }
        for (j, b) in b_parts.iter().enumerate() {
            if b.limb_count() != qp.len() || b.degree() != ctx.degree() || b.domain() != Domain::Ntt
            {
                return Err(NeoError::fault_detected(
                    "store_record",
                    format!(
                        "{} level-{level} digit {j}: {} limbs of degree {} in {:?} domain, \
                         context demands {} limbs of degree {} in Ntt domain",
                        describe_target(target),
                        b.limb_count(),
                        b.degree(),
                        b.domain(),
                        qp.len(),
                        ctx.degree()
                    ),
                ));
            }
        }
        Ok(())
    }

    /// Rebuilds and caches the Hybrid key for `(level, target)` from
    /// stored `b`-parts, regenerating the `a`-parts from seed — the
    /// warm-start path that skips the secret-key multiplications of full
    /// generation.
    ///
    /// # Errors
    ///
    /// [`NeoError::FaultDetected`] if the `b`-parts do not match the
    /// shape the context demands (a damaged or foreign record).
    pub fn rebuild_hybrid(
        &self,
        level: usize,
        target: KeyTarget,
        b_parts: Vec<RnsPoly>,
    ) -> Result<Arc<HybridKey>, NeoError> {
        self.check_b_parts(level, target, &b_parts)?;
        let digits = b_parts
            .into_iter()
            .zip(self.regen_a_parts(level, target))
            .map(|(k0, a)| [k0, a])
            .collect();
        let key = Arc::new(HybridKey { digits, level });
        self.hybrid.write().insert((level, target), key.clone());
        Ok(key)
    }

    /// Rebuilds and caches the KLSS key for `(level, target)` from stored
    /// raw `b`-parts: regenerates the `a`-parts from seed, then reruns
    /// the `β × β̃` decomposition.
    ///
    /// # Errors
    ///
    /// [`NeoError::FaultDetected`] on a shape mismatch;
    /// [`NeoError::KeySwitchKeyMissing`] if the parameter set has no KLSS
    /// configuration.
    pub fn rebuild_klss(
        &self,
        level: usize,
        target: KeyTarget,
        b_parts: Vec<RnsPoly>,
    ) -> Result<Arc<KlssKey>, NeoError> {
        self.check_b_parts(level, target, &b_parts)?;
        let raw: Vec<[RnsPoly; 2]> = b_parts
            .into_iter()
            .zip(self.regen_a_parts(level, target))
            .map(|(k0, a)| [k0, a])
            .collect();
        let key = Arc::new(self.klss_from_raw(level, target, raw)?);
        self.klss.write().insert((level, target), key.clone());
        Ok(key)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::CkksParams;

    fn chest() -> KeyChest {
        let ctx = Arc::new(CkksContext::new(CkksParams::test_tiny()).unwrap());
        let mut rng = StdRng::seed_from_u64(1);
        let sk = SecretKey::generate(&ctx, &mut rng);
        KeyChest::new(ctx, sk, 2)
    }

    #[test]
    fn gadget_identity_reconstructs() {
        // sum_j [x]_{D_j} * g_j ≡ x (mod Q) for the digit decomposition.
        let chest = chest();
        let ctx = chest.context();
        let level = 5;
        let q_primes = &ctx.q_primes()[..=level];
        let moduli = ctx.q_moduli(level).to_vec();
        let ranges = digit_ranges(ctx.params().alpha(), level + 1);
        let g = gadget_factors(q_primes, &ranges, &moduli);
        // Pick x via residues of a moderate integer.
        let x: Vec<u64> = moduli.iter().map(|m| m.reduce(0xDEAD_BEEF_CAFE)).collect();
        for (i, m) in moduli.iter().enumerate() {
            let mut acc = 0u64;
            for (j, r) in ranges.iter().enumerate() {
                // Digit value mod q_i: [x]_{D_j} ≡ x mod q_i only if i in digit;
                // reconstruct digit integer and reduce.
                let digit_primes: Vec<u64> = q_primes[r.clone()].to_vec();
                let digit_basis = RnsBasis::new(&digit_primes).unwrap();
                let digit_res: Vec<u64> = r
                    .clone()
                    .map(|t| Modulus::new(q_primes[t]).unwrap().reduce(0xDEAD_BEEF_CAFE))
                    .collect();
                let digit_val = digit_basis.reconstruct(&digit_res);
                acc = m.add(acc, m.mul(m.reduce(digit_val.rem_u64(m.value())), g[j][i]));
            }
            assert_eq!(acc, x[i], "limb {i}");
        }
    }

    #[test]
    fn hybrid_key_phase_identity() {
        // evk_j0 + evk_j1 * s = e_j + P*g_j*s^2 — check smallness after
        // subtracting the structured part is impossible without e_j, but we
        // can check the *digit-0 own-limb* structure: on limb 0 (inside
        // digit 0) g_0 = 1, so phase ≈ P*s² + e.
        let chest = chest();
        let ctx = chest.context();
        let level = 3;
        let key = chest.hybrid_key(level, KeyTarget::Relin);
        assert_eq!(key.digits.len(), ctx.params().beta(level));
        let qp = ctx.qp_moduli(level);
        let s = chest.secret_key().poly_ntt(ctx, &qp);
        let mut s2 = s.clone();
        s2.mul_pointwise_assign(&s, &qp);
        // phase = k0 + k1*s
        let mut phase = key.digits[0][1].clone();
        phase.mul_pointwise_assign(&s, &qp);
        phase.add_assign(&key.digits[0][0], &qp);
        // subtract P*g_0*s² on limb 0: g_0 = 1 there.
        let scal: Vec<u64> = qp
            .iter()
            .enumerate()
            .map(|(i, _)| if i == 0 { ctx.p_mod_q(0) } else { 0 })
            .collect();
        let mut ps2 = s2.clone();
        ps2.mul_scalar_per_limb_assign(&scal, &qp);
        phase.sub_assign(&ps2, &qp);
        ctx.ntt_inverse(&mut phase, &qp);
        // Limb 0 should now hold just the error e_0 (small).
        let norm = phase.centered_inf_norm_limb0(&qp[0]);
        assert!(norm < 64, "residual error too large: {norm}");
    }

    #[test]
    fn klss_key_shapes() {
        let chest = chest();
        let ctx = chest.context();
        let level = 4;
        let key = chest.klss_key(level, KeyTarget::Relin).unwrap();
        let p = ctx.params();
        assert_eq!(key.digits.len(), p.beta(level));
        assert_eq!(key.digits[0].len(), p.beta_tilde(level));
        assert_eq!(key.digits[0][0][0].limb_count(), p.alpha_prime());
    }

    #[test]
    fn key_target_code_roundtrips() {
        for t in [KeyTarget::Relin, KeyTarget::Galois(5), KeyTarget::Galois(0)] {
            assert_eq!(KeyTarget::from_code(t.code()), Some(t));
        }
        assert_eq!(KeyTarget::from_code(2), None, "even non-zero is unused");
    }

    #[test]
    fn key_generation_is_order_independent() {
        // Each (level, target) has its own derived stream: generating keys
        // in different orders yields bit-identical material.
        let a = chest();
        let b = chest();
        let ka2 = a.hybrid_key(2, KeyTarget::Relin);
        let ka3 = a.hybrid_key(3, KeyTarget::Galois(5));
        let kb3 = b.hybrid_key(3, KeyTarget::Galois(5));
        let kb2 = b.hybrid_key(2, KeyTarget::Relin);
        assert_eq!(ka2.digits, kb2.digits);
        assert_eq!(ka3.digits, kb3.digits);
    }

    #[test]
    fn rebuild_hybrid_from_b_parts_is_bit_identical() {
        let cold = chest();
        let full = cold.hybrid_key(3, KeyTarget::Relin);
        let b_parts = cold.export_b_parts(3, KeyTarget::Relin);
        // A fresh chest (same sk + seed) rebuilds from b-parts alone.
        let warm = chest();
        let rebuilt = warm.rebuild_hybrid(3, KeyTarget::Relin, b_parts).unwrap();
        assert_eq!(full.digits, rebuilt.digits);
        // And the rebuilt key is served from the cache afterwards.
        assert!(warm.has_key(3, KeyTarget::Relin, KsMethod::Hybrid));
    }

    #[test]
    fn rebuild_klss_from_b_parts_is_bit_identical() {
        let cold = chest();
        let full = cold.klss_key(2, KeyTarget::Relin).unwrap();
        let b_parts = cold.export_b_parts(2, KeyTarget::Relin);
        let warm = chest();
        let rebuilt = warm.rebuild_klss(2, KeyTarget::Relin, b_parts).unwrap();
        assert_eq!(full.digits, rebuilt.digits);
    }

    #[test]
    fn rebuild_rejects_misshapen_b_parts() {
        let c = chest();
        let mut b_parts = c.export_b_parts(2, KeyTarget::Relin);
        b_parts.pop();
        let err = c.rebuild_hybrid(2, KeyTarget::Relin, b_parts).unwrap_err();
        assert!(
            format!("{err}").contains("digits"),
            "typed shape error: {err}"
        );
    }

    #[test]
    fn cached_keys_enumerates_in_stable_order() {
        let c = chest();
        c.hybrid_key(3, KeyTarget::Galois(5));
        c.hybrid_key(2, KeyTarget::Relin);
        c.hybrid_key(3, KeyTarget::Relin);
        assert_eq!(
            c.cached_keys(KsMethod::Hybrid),
            vec![
                (2, KeyTarget::Relin),
                (3, KeyTarget::Relin),
                (3, KeyTarget::Galois(5)),
            ]
        );
        assert!(c.cached_keys(KsMethod::Klss).is_empty());
    }

    #[test]
    fn key_cache_returns_same_arc() {
        let chest = chest();
        let a = chest.hybrid_key(2, KeyTarget::Relin);
        let b = chest.hybrid_key(2, KeyTarget::Relin);
        assert!(Arc::ptr_eq(&a, &b));
        chest.clear_cache(KsMethod::Hybrid);
        let c = chest.hybrid_key(2, KeyTarget::Relin);
        assert!(!Arc::ptr_eq(&a, &c));
    }
}
