//! Homomorphic linear algebra: slot-wise linear transforms (the building
//! block of bootstrapping's CoeffToSlot / SlotToCoeff and of the encrypted
//! convolutions in the ResNet workload) and polynomial evaluation (the
//! building block of EvalMod and polynomial activations).

use crate::ciphertext::Ciphertext;
use crate::encoding::{Complex64, Encoder};
use crate::keys::KeyChest;
use crate::ops;
use crate::params::KsMethod;
use neo_error::NeoError;
use std::collections::BTreeMap;

/// A slot-space linear map `z ↦ M·z` stored by generalized diagonals:
/// `(M·z)_i = Σ_d diag_d[i] · z_{(i+d) mod slots}`.
///
/// Homomorphic application costs one rotation + one plaintext
/// multiplication per non-zero diagonal — the access pattern whose cost
/// the bootstrap plan models with BSGS counts.
#[derive(Debug, Clone)]
pub struct LinearTransform {
    slots: usize,
    diagonals: BTreeMap<usize, Vec<Complex64>>,
}

impl LinearTransform {
    /// Builds from an explicit dense matrix (`rows[i][j]`, `slots×slots`),
    /// keeping only non-zero diagonals.
    ///
    /// # Errors
    ///
    /// [`NeoError::InvalidParams`] if the matrix is empty or not square.
    pub fn try_from_matrix(rows: &[Vec<Complex64>]) -> Result<Self, NeoError> {
        let slots = rows.len();
        if slots == 0 {
            return Err(NeoError::invalid_params("matrix must be non-empty"));
        }
        for (i, r) in rows.iter().enumerate() {
            if r.len() != slots {
                return Err(NeoError::invalid_params(format!(
                    "matrix must be square: row {i} has {} entries, expected {slots}",
                    r.len()
                )));
            }
        }
        let mut diagonals = BTreeMap::new();
        for d in 0..slots {
            let diag: Vec<Complex64> = (0..slots).map(|i| rows[i][(i + d) % slots]).collect();
            if diag.iter().any(|v| v.abs() > 0.0) {
                diagonals.insert(d, diag);
            }
        }
        Ok(Self { slots, diagonals })
    }

    /// Builds directly from diagonals (`d → diag_d`).
    ///
    /// # Errors
    ///
    /// [`NeoError::InvalidParams`] if any diagonal has the wrong length or
    /// index ≥ slots.
    pub fn try_from_diagonals(
        slots: usize,
        diagonals: BTreeMap<usize, Vec<Complex64>>,
    ) -> Result<Self, NeoError> {
        for (&d, diag) in &diagonals {
            if d >= slots {
                return Err(NeoError::invalid_params(format!(
                    "diagonal index {d} out of range for {slots} slots"
                )));
            }
            if diag.len() != slots {
                return Err(NeoError::invalid_params(format!(
                    "diagonal {d} has {} entries, expected {slots}",
                    diag.len()
                )));
            }
        }
        Ok(Self { slots, diagonals })
    }

    /// Number of non-zero diagonals (= rotations per application).
    pub fn diagonal_count(&self) -> usize {
        self.diagonals.len()
    }

    /// Slot count the transform was built for.
    pub fn slots(&self) -> usize {
        self.slots
    }

    /// Applies the transform to plaintext slots (the reference oracle).
    pub fn apply_plain(&self, z: &[Complex64]) -> Vec<Complex64> {
        let mut out = vec![Complex64::default(); self.slots];
        for (&d, diag) in &self.diagonals {
            for i in 0..self.slots {
                out[i] = out[i] + diag[i] * z[(i + d) % self.slots];
            }
        }
        out
    }

    /// Applies the transform homomorphically: `Σ_d diag_d ⊙ rot(ct, d)`,
    /// followed by one rescale. Consumes one level.
    ///
    /// # Errors
    ///
    /// [`NeoError::InvalidParams`] if the transform has no diagonals;
    /// [`NeoError::ParameterMismatch`] if the encoder's slot count differs
    /// from the transform's; plus the underlying rotation / multiply /
    /// rescale errors.
    pub fn try_apply(
        &self,
        chest: &KeyChest,
        enc: &Encoder,
        ct: &Ciphertext,
        method: KsMethod,
    ) -> Result<Ciphertext, NeoError> {
        self.check_slots(enc)?;
        let ctx = chest.context();
        let scale = ctx.params().scale();
        let mut acc: Option<Ciphertext> = None;
        for (&d, diag) in &self.diagonals {
            let rotated = if d == 0 {
                ct.clone()
            } else {
                ops::try_hrotate(chest, ct, d, method)?
            };
            let pt = enc.encode(ctx, diag, scale, rotated.level());
            let term = ops::try_pmult(ctx, &rotated, &pt)?;
            acc = Some(match acc {
                None => term,
                Some(a) => ops::try_hadd(ctx, &a, &term)?,
            });
        }
        let acc = acc.ok_or_else(|| NeoError::invalid_params("transform has no diagonals"))?;
        ops::try_rescale(ctx, &acc)
    }

    fn check_slots(&self, enc: &Encoder) -> Result<(), NeoError> {
        if enc.slots() != self.slots {
            return Err(NeoError::parameter_mismatch(
                "linear_transform",
                format!(
                    "encoder has {} slots, transform expects {}",
                    enc.slots(),
                    self.slots
                ),
            ));
        }
        Ok(())
    }
}

impl LinearTransform {
    /// Applies the transform with the baby-step/giant-step rotation
    /// schedule used by real CoeffToSlot/SlotToCoeff implementations:
    /// `M·z = Σ_j rot_{g·j}( Σ_i rot^{-gj}(diag_{gj+i}) ⊙ rot_i(z) )`,
    /// costing `g + D/g` rotations instead of `D` for `D` diagonals.
    ///
    /// # Errors
    ///
    /// [`NeoError::InvalidParams`] if `baby == 0` or the transform has no
    /// diagonals; [`NeoError::ParameterMismatch`] on slot disagreement;
    /// plus the underlying op errors.
    pub fn try_apply_bsgs(
        &self,
        chest: &KeyChest,
        enc: &Encoder,
        ct: &Ciphertext,
        baby: usize,
        method: KsMethod,
    ) -> Result<Ciphertext, NeoError> {
        if baby == 0 {
            return Err(NeoError::invalid_params("baby-step size must be positive"));
        }
        self.check_slots(enc)?;
        let ctx = chest.context();
        let scale = ctx.params().scale();
        // Baby rotations of the ciphertext, computed once.
        let mut babies: BTreeMap<usize, Ciphertext> = BTreeMap::new();
        for &d in self.diagonals.keys() {
            // Not entry().or_insert_with(): the rotation is fallible.
            if let std::collections::btree_map::Entry::Vacant(slot) = babies.entry(d % baby) {
                let i = d % baby;
                slot.insert(if i == 0 {
                    ct.clone()
                } else {
                    ops::try_hrotate(chest, ct, i, method)?
                });
            }
        }
        // Group diagonals by giant step.
        let mut giants: BTreeMap<usize, Vec<usize>> = BTreeMap::new();
        for &d in self.diagonals.keys() {
            giants.entry(d / baby).or_default().push(d);
        }
        let mut acc: Option<Ciphertext> = None;
        for (&j, ds) in &giants {
            let shift = j * baby;
            let mut inner: Option<Ciphertext> = None;
            for &d in ds {
                let diag = &self.diagonals[&d];
                // Pre-rotate the diagonal right by the giant shift.
                let pre: Vec<Complex64> = (0..self.slots)
                    .map(|t| diag[(t + self.slots - shift % self.slots) % self.slots])
                    .collect();
                let b = &babies[&(d % baby)];
                let pt = enc.encode(ctx, &pre, scale, b.level());
                let term = ops::try_pmult(ctx, b, &pt)?;
                inner = Some(match inner {
                    None => term,
                    Some(a) => ops::try_hadd(ctx, &a, &term)?,
                });
            }
            let mut giant_ct =
                inner.ok_or_else(|| NeoError::invalid_params("empty giant group"))?;
            if !shift.is_multiple_of(self.slots) {
                giant_ct = ops::try_hrotate(chest, &giant_ct, shift % self.slots, method)?;
            }
            acc = Some(match acc {
                None => giant_ct,
                Some(a) => ops::try_hadd(ctx, &a, &giant_ct)?,
            });
        }
        let acc = acc.ok_or_else(|| NeoError::invalid_params("transform has no diagonals"))?;
        ops::try_rescale(ctx, &acc)
    }
}

/// Evaluates a real-coefficient polynomial `p(x) = c_0 + c_1 x + …` on a
/// ciphertext by Horner's rule. Consumes `deg(p)` levels (one
/// multiplication + rescale per step) — the pattern EvalMod and the
/// polynomial ReLU of the ResNet workload use.
///
/// # Errors
///
/// [`NeoError::InvalidParams`] if `deg(p) < 1`;
/// [`NeoError::ModulusChainExhausted`] if the ciphertext lacks the
/// required depth; plus the underlying op errors.
pub fn try_eval_polynomial(
    chest: &KeyChest,
    enc: &Encoder,
    ct: &Ciphertext,
    coeffs: &[f64],
    method: KsMethod,
) -> Result<Ciphertext, NeoError> {
    if coeffs.len() < 2 {
        return Err(NeoError::invalid_params(
            "need degree >= 1 (constant polys need no ciphertext)",
        ));
    }
    let n = coeffs.len() - 1;
    if ct.level() < n {
        return Err(NeoError::chain_exhausted("eval_polynomial", ct.level(), n));
    }
    let ctx = chest.context();
    let scale = ctx.params().scale();
    let slots = enc.slots();
    let constant = |c: f64, level: usize, s: f64| {
        enc.encode(ctx, &vec![Complex64::new(c, 0.0); slots], s, level)
    };
    // acc = c_n·x + c_{n-1}
    let cn = constant(coeffs[n], ct.level(), scale);
    let mut acc = ops::try_rescale(ctx, &ops::try_pmult(ctx, ct, &cn)?)?;
    acc = ops::try_padd(
        ctx,
        &acc,
        &constant(coeffs[n - 1], acc.level(), acc.scale()),
    )?;
    // acc = acc·x + c_i, descending.
    for i in (0..n - 1).rev() {
        let x_low = ops::try_level_reduce(ct, acc.level())?;
        acc = ops::try_rescale(ctx, &ops::try_hmult(chest, &acc, &x_low, method)?)?;
        acc = ops::try_padd(ctx, &acc, &constant(coeffs[i], acc.level(), acc.scale()))?;
    }
    Ok(acc)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::keys::{PublicKey, SecretKey};
    use crate::{CkksContext, CkksParams};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    use std::sync::Arc;

    fn rig(seed: u64) -> (Arc<CkksContext>, KeyChest, PublicKey, Encoder, StdRng) {
        let ctx = Arc::new(CkksContext::new(CkksParams::test_tiny()).unwrap());
        let mut rng = StdRng::seed_from_u64(seed);
        let sk = SecretKey::generate(&ctx, &mut rng);
        let pk = PublicKey::generate(&ctx, &sk, &mut rng);
        let chest = KeyChest::new(ctx.clone(), sk, seed + 1);
        let enc = Encoder::new(ctx.degree());
        (ctx, chest, pk, enc, rng)
    }

    #[test]
    fn tridiagonal_transform_matches_plain() {
        let (ctx, chest, pk, enc, mut rng) = rig(5);
        let slots = enc.slots();
        // A tridiagonal-ish matrix: diagonals 0, 1 and slots-1.
        let mut diagonals = std::collections::BTreeMap::new();
        for d in [0usize, 1, slots - 1] {
            let diag: Vec<Complex64> = (0..slots)
                .map(|i| Complex64::new(((i + d) % 7) as f64 * 0.1, 0.0))
                .collect();
            diagonals.insert(d, diag);
        }
        let lt = LinearTransform::try_from_diagonals(slots, diagonals).unwrap();
        assert_eq!(lt.diagonal_count(), 3);
        let z: Vec<Complex64> = (0..slots)
            .map(|_| Complex64::new(rng.gen_range(-1.0..1.0), 0.0))
            .collect();
        let pt = enc.encode(&ctx, &z, ctx.params().scale(), 3);
        let ct = ops::try_encrypt(&ctx, &pk, &pt, &mut rng).unwrap();
        let out_ct = lt.try_apply(&chest, &enc, &ct, KsMethod::Klss).unwrap();
        let got = enc.decode(
            &ctx,
            &ops::try_decrypt(&ctx, chest.secret_key(), &out_ct).unwrap(),
        );
        let want = lt.apply_plain(&z);
        for i in 0..slots {
            assert!(
                (got[i] - want[i]).abs() < 1e-2,
                "slot {i}: {:?} vs {:?}",
                got[i],
                want[i]
            );
        }
    }

    #[test]
    fn dense_matrix_roundtrip_small() {
        // try_from_matrix and apply_plain agree with direct mat-vec.
        let slots = 8usize;
        let mut rng = StdRng::seed_from_u64(9);
        let rows: Vec<Vec<Complex64>> = (0..slots)
            .map(|_| {
                (0..slots)
                    .map(|_| Complex64::new(rng.gen_range(-1.0..1.0), 0.0))
                    .collect()
            })
            .collect();
        let lt = LinearTransform::try_from_matrix(&rows).unwrap();
        let z: Vec<Complex64> = (0..slots)
            .map(|_| Complex64::new(rng.gen_range(-1.0..1.0), 0.0))
            .collect();
        let got = lt.apply_plain(&z);
        for i in 0..slots {
            let want = rows[i]
                .iter()
                .zip(&z)
                .fold(Complex64::default(), |acc, (m, v)| acc + *m * *v);
            assert!((got[i] - want).abs() < 1e-12);
        }
    }

    #[test]
    fn malformed_transforms_are_rejected() {
        let rows = vec![vec![Complex64::new(1.0, 0.0); 3], vec![]];
        assert!(LinearTransform::try_from_matrix(&rows).is_err());
        let mut diagonals = std::collections::BTreeMap::new();
        diagonals.insert(9usize, vec![Complex64::default(); 4]);
        assert!(LinearTransform::try_from_diagonals(4, diagonals).is_err());
    }

    #[test]
    fn polynomial_evaluation_degree_three() {
        let (ctx, chest, pk, enc, mut rng) = rig(6);
        let slots = enc.slots();
        let xs: Vec<f64> = (0..slots).map(|_| rng.gen_range(-0.9..0.9)).collect();
        let z: Vec<Complex64> = xs.iter().map(|&x| Complex64::new(x, 0.0)).collect();
        let pt = enc.encode(&ctx, &z, ctx.params().scale(), 4);
        let ct = ops::try_encrypt(&ctx, &pk, &pt, &mut rng).unwrap();
        // p(x) = 0.5 + 0.197x - 0.004x^3 (HELR's degree-3 sigmoid).
        let coeffs = [0.5, 0.197, 0.0, -0.004];
        let out_ct = try_eval_polynomial(&chest, &enc, &ct, &coeffs, KsMethod::Klss).unwrap();
        let got = enc.decode(
            &ctx,
            &ops::try_decrypt(&ctx, chest.secret_key(), &out_ct).unwrap(),
        );
        for i in 0..slots {
            let x = xs[i];
            let want = 0.5 + 0.197 * x - 0.004 * x * x * x;
            assert!(
                (got[i].re - want).abs() < 1e-2,
                "slot {i}: {} vs {want}",
                got[i].re
            );
        }
    }

    #[test]
    fn linear_polynomial() {
        let (ctx, chest, pk, enc, mut rng) = rig(7);
        let z = vec![Complex64::new(0.25, 0.0); enc.slots()];
        let pt = enc.encode(&ctx, &z, ctx.params().scale(), 2);
        let ct = ops::try_encrypt(&ctx, &pk, &pt, &mut rng).unwrap();
        let out_ct = try_eval_polynomial(&chest, &enc, &ct, &[1.0, 2.0], KsMethod::Hybrid).unwrap();
        let got = enc.decode(
            &ctx,
            &ops::try_decrypt(&ctx, chest.secret_key(), &out_ct).unwrap(),
        );
        assert!((got[0].re - 1.5).abs() < 1e-3, "{}", got[0].re);
    }

    #[test]
    fn shallow_ciphertext_cannot_take_deep_polynomial() {
        let (ctx, chest, pk, enc, mut rng) = rig(8);
        let z = vec![Complex64::new(0.5, 0.0); enc.slots()];
        let pt = enc.encode(&ctx, &z, ctx.params().scale(), 1);
        let ct = ops::try_encrypt(&ctx, &pk, &pt, &mut rng).unwrap();
        let err = try_eval_polynomial(&chest, &enc, &ct, &[1.0, 1.0, 1.0, 1.0], KsMethod::Hybrid)
            .unwrap_err();
        assert_eq!(err.kind(), neo_error::ErrorKind::ModulusChainExhausted);
    }
}

#[cfg(test)]
mod bsgs_tests {
    use super::*;
    use crate::keys::{PublicKey, SecretKey};
    use crate::{CkksContext, CkksParams};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    use std::sync::Arc;

    #[test]
    fn bsgs_matches_direct_application() {
        let ctx = Arc::new(CkksContext::new(CkksParams::test_tiny()).unwrap());
        let mut rng = StdRng::seed_from_u64(11);
        let sk = SecretKey::generate(&ctx, &mut rng);
        let pk = PublicKey::generate(&ctx, &sk, &mut rng);
        let chest = KeyChest::new(ctx.clone(), sk, 12);
        let enc = Encoder::new(ctx.degree());
        let slots = enc.slots();
        // A transform with diagonals spanning several giant steps.
        let mut diagonals = std::collections::BTreeMap::new();
        for d in [0usize, 1, 3, 8, 9, 17, 24] {
            let diag: Vec<Complex64> = (0..slots)
                .map(|i| Complex64::new(((i * 31 + d * 7) % 11) as f64 * 0.05, 0.0))
                .collect();
            diagonals.insert(d, diag);
        }
        let lt = LinearTransform::try_from_diagonals(slots, diagonals).unwrap();
        let z: Vec<Complex64> = (0..slots)
            .map(|_| Complex64::new(rng.gen_range(-1.0..1.0), 0.0))
            .collect();
        let pt = enc.encode(&ctx, &z, ctx.params().scale(), 3);
        let ct = ops::try_encrypt(&ctx, &pk, &pt, &mut rng).unwrap();
        let direct = lt.try_apply(&chest, &enc, &ct, KsMethod::Klss).unwrap();
        let bsgs = lt
            .try_apply_bsgs(&chest, &enc, &ct, 8, KsMethod::Klss)
            .unwrap();
        let want = lt.apply_plain(&z);
        let d1 = enc.decode(
            &ctx,
            &ops::try_decrypt(&ctx, chest.secret_key(), &direct).unwrap(),
        );
        let d2 = enc.decode(
            &ctx,
            &ops::try_decrypt(&ctx, chest.secret_key(), &bsgs).unwrap(),
        );
        for i in 0..slots {
            assert!((d1[i] - want[i]).abs() < 1e-2, "direct slot {i}");
            assert!(
                (d2[i] - want[i]).abs() < 1e-2,
                "bsgs slot {i}: {:?} vs {:?}",
                d2[i],
                want[i]
            );
        }
    }
}
