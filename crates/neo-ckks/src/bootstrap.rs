//! Bootstrapping (the PackBootstrap workload): structure and costs.
//!
//! CKKS bootstrapping refreshes a ciphertext's multiplicative budget via
//! four phases: **ModRaise**, **CoeffToSlot** (CTS — a homomorphic DFT as
//! BSGS matrix-vector products), **EvalMod** (homomorphic sine via a
//! Chebyshev polynomial), and **SlotToCoeff** (STC). With small word
//! sizes, Double Rescale (DS) replaces Rescale throughout (Section 2.1).
//!
//! This module provides the full *operation plan* for one bootstrap —
//! the exact sequence of (operation, level) pairs with baby-step/giant-step
//! rotation counts — which both the performance model and the application
//! traces consume. The plan follows the standard construction
//! (Han–Ki-style CTS/STC factorization, degree-63 Chebyshev EvalMod with
//! double-angle foldings).

use crate::cost::{op_time_us, CostConfig, Operation};
use crate::params::CkksParams;
use neo_error::NeoError;
use neo_gpu_sim::DeviceModel;

/// One step of a workload trace: an operation executed at a level.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TraceStep {
    /// Which primitive runs.
    pub op: Operation,
    /// The ciphertext level it runs at.
    pub level: usize,
    /// How many times it repeats at this point.
    pub count: usize,
}

/// Structural description of one bootstrap.
#[derive(Debug, Clone)]
pub struct BootstrapPlan {
    /// CTS/STC radix decomposition (number of BSGS stages each).
    pub cts_stages: usize,
    /// Rotations per BSGS stage (baby + giant steps).
    pub rotations_per_stage: usize,
    /// Plaintext multiplications per BSGS stage.
    pub pmults_per_stage: usize,
    /// Chebyshev degree for EvalMod.
    pub evalmod_degree: usize,
    /// Levels consumed by CTS, EvalMod, STC (with DS when `use_ds`).
    pub use_ds: bool,
    /// Level at which the bootstrap pipeline starts (after ModRaise).
    pub start_level: usize,
}

impl BootstrapPlan {
    /// The standard plan for a parameter set: 3-stage CTS/STC over
    /// `N/2` slots, degree-63 EvalMod. DS replaces Rescale for small-word
    /// configurations (`WordSize ≤ 36`) unless the parameter set opts
    /// into single scaling (the `SS` rows of Table 5).
    ///
    /// # Errors
    ///
    /// [`NeoError::Math`] if the parameters fail validation;
    /// [`NeoError::ModulusChainExhausted`] if the chain is too short for
    /// the plan to leave any usable levels after the bootstrap.
    pub fn try_standard(p: &CkksParams) -> Result<Self, NeoError> {
        p.validate()?;
        let plan = Self::unchecked_standard(p);
        if plan.remaining_levels() == 0 {
            // The plan needs at least one level more than it consumes.
            let consumed = plan.rescale_depth()
                * (2 * plan.cts_stages + ((plan.evalmod_degree + 1) as f64).log2().ceil() as usize);
            return Err(NeoError::chain_exhausted(
                "bootstrap",
                plan.start_level,
                consumed + 1,
            ));
        }
        Ok(plan)
    }

    fn unchecked_standard(p: &CkksParams) -> Self {
        let slots = p.slots().max(2);
        let stages = 3usize;
        // Each stage multiplies by a sparse DFT factor of radix
        // r = slots^(1/stages); BSGS needs ~2*sqrt(r) rotations and r
        // pmults per stage.
        let radix = (slots as f64).powf(1.0 / stages as f64).ceil() as usize;
        let rot = (2.0 * (radix as f64).sqrt()).ceil() as usize;
        Self {
            cts_stages: stages,
            rotations_per_stage: rot.max(2),
            pmults_per_stage: radix.max(2),
            evalmod_degree: 63,
            use_ds: p.word_size <= 36 && !p.single_scaling,
            start_level: p.max_level,
        }
    }

    /// Levels one rescale consumes under this plan (2 with DS).
    fn rescale_depth(&self) -> usize {
        if self.use_ds {
            2
        } else {
            1
        }
    }

    /// The full operation trace of one bootstrap.
    pub fn trace(&self) -> Vec<TraceStep> {
        let mut steps = Vec::new();
        let d = self.rescale_depth();
        let mut level = self.start_level;
        let rescale_op = if self.use_ds {
            Operation::DoubleRescale
        } else {
            Operation::Rescale
        };
        // ModRaise is modelled as limb extension: a pass of ModMul-scale
        // work, folded into the first CTS stage's PAdd here.
        // CTS: one BSGS linear transform per stage, each consuming one
        // rescale depth.
        for _ in 0..self.cts_stages {
            steps.push(TraceStep {
                op: Operation::HRotate,
                level,
                count: self.rotations_per_stage,
            });
            steps.push(TraceStep {
                op: Operation::PMult,
                level,
                count: self.pmults_per_stage,
            });
            steps.push(TraceStep {
                op: Operation::HAdd,
                level,
                count: self.pmults_per_stage,
            });
            steps.push(TraceStep {
                op: rescale_op,
                level,
                count: 1,
            });
            level = level.saturating_sub(d);
        }
        // EvalMod: Chebyshev evaluation of degree 63 ≈ log2(63) ≈ 6
        // non-scalar mult levels via BSGS (Paterson–Stockmeyer): ~14
        // HMULTs, plus double-angle foldings (3 HMULTs).
        let ps_mults = 2 * ((self.evalmod_degree + 1) as f64).sqrt().ceil() as usize + 3;
        let evalmod_depth = ((self.evalmod_degree + 1) as f64).log2().ceil() as usize;
        for _ in 0..evalmod_depth {
            steps.push(TraceStep {
                op: Operation::HMult,
                level,
                count: ps_mults / evalmod_depth + 1,
            });
            steps.push(TraceStep {
                op: rescale_op,
                level,
                count: 1,
            });
            level = level.saturating_sub(d);
        }
        // STC mirrors CTS.
        for _ in 0..self.cts_stages {
            steps.push(TraceStep {
                op: Operation::HRotate,
                level,
                count: self.rotations_per_stage,
            });
            steps.push(TraceStep {
                op: Operation::PMult,
                level,
                count: self.pmults_per_stage,
            });
            steps.push(TraceStep {
                op: Operation::HAdd,
                level,
                count: self.pmults_per_stage,
            });
            steps.push(TraceStep {
                op: rescale_op,
                level,
                count: 1,
            });
            level = level.saturating_sub(d);
        }
        steps
    }

    /// Levels remaining after the bootstrap (`ℓ_eff` budget).
    pub fn remaining_levels(&self) -> usize {
        let consumed = self.rescale_depth()
            * (2 * self.cts_stages + ((self.evalmod_degree + 1) as f64).log2().ceil() as usize);
        self.start_level.saturating_sub(consumed)
    }

    /// Batch-amortized time of one bootstrap on a device, in seconds.
    pub fn time_s(&self, dev: &DeviceModel, p: &CkksParams, cfg: &CostConfig) -> f64 {
        self.trace()
            .iter()
            .map(|s| s.count as f64 * op_time_us(dev, p, s.level.max(1), s.op, cfg) * 1e-6)
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::ParamSet;

    #[test]
    fn plan_has_positive_budget() {
        let p = ParamSet::C.params();
        let plan = BootstrapPlan::try_standard(&p).unwrap();
        assert!(plan.use_ds, "36-bit words need DS");
        assert!(
            plan.remaining_levels() > 0,
            "bootstrap must leave usable levels"
        );
        assert!(!plan.trace().is_empty());
    }

    #[test]
    fn ds_doubles_level_consumption() {
        let p36 = ParamSet::C.params();
        let p60 = ParamSet::E.params();
        let a = BootstrapPlan::try_standard(&p36).unwrap();
        let b = BootstrapPlan::try_standard(&p60).unwrap();
        assert!(a.use_ds && !b.use_ds);
        assert!(a.remaining_levels() < b.remaining_levels());
    }

    #[test]
    fn trace_levels_never_increase() {
        let p = ParamSet::C.params();
        let plan = BootstrapPlan::try_standard(&p).unwrap();
        let mut prev = usize::MAX;
        for s in plan.trace() {
            assert!(s.level <= prev);
            prev = s.level;
        }
    }

    #[test]
    fn bootstrap_time_positive_and_dominated_by_hmults_and_rotations() {
        let dev = DeviceModel::a100();
        let p = ParamSet::C.params();
        let plan = BootstrapPlan::try_standard(&p).unwrap();
        let t = plan.time_s(&dev, &p, &CostConfig::neo());
        assert!(t > 0.0 && t < 60.0, "implausible bootstrap time {t}");
    }
}
