//! Table 2 — kernel complexity of the Hybrid and KLSS methods, in units of
//! "limb operations" (one operation touching all `N` coefficients of one
//! limb), exactly as the paper states them.

use crate::params::CkksParams;

/// Per-step complexity of one KeySwitch (limb-operation counts).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct KeySwitchComplexity {
    /// Mod Up BConv work.
    pub mod_up: u64,
    /// Forward NTT count.
    pub ntt: u64,
    /// Inner-product multiply-accumulate work.
    pub inner_product: u64,
    /// Inverse NTT count.
    pub intt: u64,
    /// Recover Limbs work (KLSS only; 0 for Hybrid).
    pub recover_limbs: u64,
    /// Mod Down work.
    pub mod_down: u64,
}

impl KeySwitchComplexity {
    /// Sum of all steps.
    pub fn total(&self) -> u64 {
        self.mod_up + self.ntt + self.inner_product + self.intt + self.recover_limbs + self.mod_down
    }
}

/// Table 2, Hybrid column, at level `l`.
pub fn hybrid(p: &CkksParams, l: usize) -> KeySwitchComplexity {
    let alpha = p.alpha() as u64;
    let beta = p.beta(l) as u64;
    let lv = l as u64;
    KeySwitchComplexity {
        mod_up: beta * lv * alpha,
        ntt: beta * (lv + alpha),
        inner_product: 2 * beta * (lv + alpha),
        intt: 2 * beta * (lv + alpha),
        recover_limbs: 0,
        mod_down: 2 * (lv * alpha + lv),
    }
}

/// Table 2, KLSS column, at level `l`.
///
/// # Panics
///
/// Panics without a KLSS configuration.
pub fn klss(p: &CkksParams, l: usize) -> KeySwitchComplexity {
    let alpha = p.alpha() as u64;
    let beta = p.beta(l) as u64;
    let alpha_p = p.alpha_prime() as u64;
    let beta_t = p.beta_tilde(l) as u64;
    let lv = l as u64;
    KeySwitchComplexity {
        mod_up: beta * alpha * alpha_p,
        ntt: beta_t * alpha_p,
        inner_product: beta * beta_t * alpha_p,
        intt: 2 * beta_t * alpha_p,
        recover_limbs: 2 * alpha_p * (lv + alpha),
        mod_down: 2 * (lv * alpha + lv),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::ParamSet;

    #[test]
    fn klss_beats_hybrid_at_set_c() {
        // The premise of Section 3.2: with judicious parameters the KLSS
        // total complexity is below Hybrid's at full level.
        let p = ParamSet::C.params();
        let h = hybrid(&p, 35);
        let k = klss(&p, 35);
        assert!(
            k.total() < h.total(),
            "KLSS {} !< Hybrid {}",
            k.total(),
            h.total()
        );
    }

    #[test]
    fn klss_ntt_count_is_much_smaller() {
        let p = ParamSet::C.params();
        assert!(klss(&p, 35).ntt * 4 < hybrid(&p, 35).ntt * 3);
    }

    #[test]
    fn complexity_shrinks_with_level() {
        let p = ParamSet::C.params();
        assert!(klss(&p, 10).total() < klss(&p, 35).total());
        assert!(hybrid(&p, 10).total() < hybrid(&p, 35).total());
    }
}
