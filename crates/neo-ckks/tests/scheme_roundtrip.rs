//! End-to-end functional tests of the CKKS scheme: every homomorphic
//! operation is checked against plain complex arithmetic on the slots,
//! under both key-switching methods.

use neo_ckks::encoding::Complex64;
use neo_ckks::keys::{KeyChest, PublicKey, SecretKey};
use neo_ckks::ops;
use neo_ckks::{Ciphertext, CkksContext, CkksParams, Encoder, KsMethod};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::Arc;

struct Harness {
    ctx: Arc<CkksContext>,
    chest: KeyChest,
    pk: PublicKey,
    enc: Encoder,
    rng: StdRng,
}

impl Harness {
    fn new(seed: u64) -> Self {
        let ctx = Arc::new(CkksContext::new(CkksParams::test_tiny()).unwrap());
        let mut rng = StdRng::seed_from_u64(seed);
        let sk = SecretKey::generate(&ctx, &mut rng);
        let pk = PublicKey::generate(&ctx, &sk, &mut rng);
        let chest = KeyChest::new(ctx.clone(), sk, seed + 1);
        let enc = Encoder::new(ctx.degree());
        Self {
            ctx,
            chest,
            pk,
            enc,
            rng,
        }
    }

    fn encrypt(&mut self, vals: &[Complex64], level: usize) -> Ciphertext {
        let pt = self
            .enc
            .encode(&self.ctx, vals, self.ctx.params().scale(), level);
        ops::try_encrypt(&self.ctx, &self.pk, &pt, &mut self.rng).unwrap()
    }

    fn decrypt(&self, ct: &Ciphertext) -> Vec<Complex64> {
        self.enc.decode(
            &self.ctx,
            &ops::try_decrypt(&self.ctx, self.chest.secret_key(), ct).unwrap(),
        )
    }

    fn slots(&self) -> usize {
        self.enc.slots()
    }
}

fn ramp(slots: usize, scale: f64) -> Vec<Complex64> {
    (0..slots)
        .map(|i| {
            Complex64::new(
                scale * (i as f64 * 0.13).sin(),
                scale * (i as f64 * 0.07).cos(),
            )
        })
        .collect()
}

fn assert_close(got: &[Complex64], want: &[Complex64], tol: f64, what: &str) {
    for (i, (g, w)) in got.iter().zip(want).enumerate() {
        let err = (*g - *w).abs();
        assert!(
            err < tol,
            "{what}: slot {i}: {g:?} vs {w:?} (err {err:.2e})"
        );
    }
}

#[test]
fn encrypt_decrypt_roundtrip() {
    let mut h = Harness::new(1);
    let vals = ramp(h.slots(), 1.0);
    let ct = h.encrypt(&vals, 3);
    assert_close(&h.decrypt(&ct), &vals, 1e-4, "roundtrip");
}

#[test]
fn homomorphic_addition_and_subtraction() {
    let mut h = Harness::new(2);
    let a = ramp(h.slots(), 1.0);
    let b = ramp(h.slots(), 0.5);
    let ca = h.encrypt(&a, 3);
    let cb = h.encrypt(&b, 3);
    let sum = ops::try_hadd(&h.ctx, &ca, &cb).unwrap();
    let diff = ops::try_hsub(&h.ctx, &ca, &cb).unwrap();
    let want_sum: Vec<_> = a.iter().zip(&b).map(|(x, y)| *x + *y).collect();
    let want_diff: Vec<_> = a.iter().zip(&b).map(|(x, y)| *x - *y).collect();
    assert_close(&h.decrypt(&sum), &want_sum, 1e-4, "hadd");
    assert_close(&h.decrypt(&diff), &want_diff, 1e-4, "hsub");
}

#[test]
fn plaintext_mult_with_rescale() {
    let mut h = Harness::new(3);
    let a = ramp(h.slots(), 1.0);
    let b = ramp(h.slots(), 0.8);
    let ca = h.encrypt(&a, 3);
    let pb = h.enc.encode(&h.ctx, &b, h.ctx.params().scale(), 3);
    let prod = ops::try_rescale(&h.ctx, &ops::try_pmult(&h.ctx, &ca, &pb).unwrap()).unwrap();
    let want: Vec<_> = a.iter().zip(&b).map(|(x, y)| *x * *y).collect();
    assert_close(&h.decrypt(&prod), &want, 1e-3, "pmult+rescale");
    assert_eq!(prod.level(), 2);
}

#[test]
fn hmult_hybrid_method() {
    let mut h = Harness::new(4);
    let a = ramp(h.slots(), 1.0);
    let b = ramp(h.slots(), 0.9);
    let ca = h.encrypt(&a, 3);
    let cb = h.encrypt(&b, 3);
    let prod = ops::try_rescale(
        &h.ctx,
        &ops::try_hmult(&h.chest, &ca, &cb, KsMethod::Hybrid).unwrap(),
    )
    .unwrap();
    let want: Vec<_> = a.iter().zip(&b).map(|(x, y)| *x * *y).collect();
    assert_close(&h.decrypt(&prod), &want, 1e-2, "hmult hybrid");
}

#[test]
fn hmult_klss_method() {
    let mut h = Harness::new(5);
    let a = ramp(h.slots(), 1.0);
    let b = ramp(h.slots(), 0.9);
    let ca = h.encrypt(&a, 3);
    let cb = h.encrypt(&b, 3);
    let prod = ops::try_rescale(
        &h.ctx,
        &ops::try_hmult(&h.chest, &ca, &cb, KsMethod::Klss).unwrap(),
    )
    .unwrap();
    let want: Vec<_> = a.iter().zip(&b).map(|(x, y)| *x * *y).collect();
    assert_close(&h.decrypt(&prod), &want, 1e-2, "hmult klss");
}

#[test]
fn hmult_methods_agree() {
    let mut h = Harness::new(6);
    let a = ramp(h.slots(), 1.0);
    let ca = h.encrypt(&a, 4);
    let hy = ops::try_rescale(
        &h.ctx,
        &ops::try_hmult(&h.chest, &ca, &ca, KsMethod::Hybrid).unwrap(),
    )
    .unwrap();
    let kl = ops::try_rescale(
        &h.ctx,
        &ops::try_hmult(&h.chest, &ca, &ca, KsMethod::Klss).unwrap(),
    )
    .unwrap();
    let dh = h.decrypt(&hy);
    let dk = h.decrypt(&kl);
    assert_close(&dh, &dk, 1e-2, "hybrid vs klss");
}

#[test]
fn rotation_both_methods() {
    for method in [KsMethod::Hybrid, KsMethod::Klss] {
        let mut h = Harness::new(7);
        let a = ramp(h.slots(), 1.0);
        let ca = h.encrypt(&a, 3);
        for steps in [1usize, 2, 5] {
            let rot = ops::try_hrotate(&h.chest, &ca, steps, method).unwrap();
            let want: Vec<_> = (0..h.slots()).map(|i| a[(i + steps) % h.slots()]).collect();
            assert_close(
                &h.decrypt(&rot),
                &want,
                1e-3,
                &format!("rotate {steps} {method:?}"),
            );
        }
    }
}

#[test]
fn conjugation() {
    let mut h = Harness::new(8);
    let a = ramp(h.slots(), 1.0);
    let ca = h.encrypt(&a, 3);
    let conj = ops::try_hconjugate(&h.chest, &ca, KsMethod::Hybrid).unwrap();
    let want: Vec<_> = a.iter().map(|v| v.conj()).collect();
    assert_close(&h.decrypt(&conj), &want, 1e-3, "conjugate");
}

#[test]
fn multiplicative_depth_chain() {
    // Square repeatedly down the modulus chain: x -> x^2 -> x^4.
    let mut h = Harness::new(9);
    let a: Vec<Complex64> = (0..h.slots())
        .map(|i| Complex64::new(0.9 + 0.001 * i as f64, 0.0))
        .collect();
    let mut ct = h.encrypt(&a, 5);
    let mut want: Vec<Complex64> = a.clone();
    for _ in 0..2 {
        ct = ops::try_rescale(
            &h.ctx,
            &ops::try_hmult(&h.chest, &ct, &ct, KsMethod::Klss).unwrap(),
        )
        .unwrap();
        want = want.iter().map(|v| *v * *v).collect();
    }
    assert_close(&h.decrypt(&ct), &want, 5e-2, "depth-2 squaring");
    assert_eq!(ct.level(), 3);
}

#[test]
fn double_rescale_drops_two_levels() {
    let mut h = Harness::new(10);
    let a = ramp(h.slots(), 1.0);
    let ca = h.encrypt(&a, 4);
    // Scale the ciphertext up twice via pmult by 1.0 at matching scales,
    // then double-rescale back.
    let one = vec![Complex64::new(1.0, 0.0); h.slots()];
    let p1 = h.enc.encode(&h.ctx, &one, h.ctx.params().scale(), 4);
    let up = ops::try_pmult(&h.ctx, &ops::try_pmult(&h.ctx, &ca, &p1).unwrap(), &p1).unwrap();
    let down = ops::try_double_rescale(&h.ctx, &up).unwrap();
    assert_eq!(down.level(), 2);
    assert_close(&h.decrypt(&down), &a, 1e-3, "double rescale");
}

#[test]
fn level_reduce_preserves_plaintext() {
    let mut h = Harness::new(11);
    let a = ramp(h.slots(), 1.0);
    let ca = h.encrypt(&a, 4);
    let low = ops::try_level_reduce(&ca, 1).unwrap();
    assert_eq!(low.level(), 1);
    assert_close(&h.decrypt(&low), &a, 1e-4, "level reduce");
}

#[test]
fn sum_all_slots_by_rotations() {
    // log-step rotate-and-add: every slot ends up holding the total sum.
    let mut h = Harness::new(12);
    let a: Vec<Complex64> = (0..h.slots())
        .map(|i| Complex64::new((i % 5) as f64 * 0.1, 0.0))
        .collect();
    let mut ct = h.encrypt(&a, 3);
    let mut step = 1usize;
    while step < h.slots() {
        let rot = ops::try_hrotate(&h.chest, &ct, step, KsMethod::Klss).unwrap();
        ct = ops::try_hadd(&h.ctx, &ct, &rot).unwrap();
        step *= 2;
    }
    let total: Complex64 = a.iter().fold(Complex64::default(), |acc, v| acc + *v);
    let out = h.decrypt(&ct);
    for v in out.iter().take(4) {
        assert!((*v - total).abs() < 1e-2, "{v:?} vs {total:?}");
    }
}
