//! End-to-end fault injection and recovery through the engine/batch
//! layer. These live in their own integration binary (own process) so
//! the globally armed fault plans cannot contaminate the library's unit
//! tests; within the binary every test holds `test_lock` so clean
//! baseline phases never overlap another test's armed window.

use neo_ckks::{
    BatchOp, BatchProgram, Ciphertext, CkksParams, ErrorKind, FheEngine, NeoError, OpPolicy, Slot,
    VerifyPolicy,
};
use neo_fault::{FaultPlan, FaultScope, FaultSite, FaultSpec};
use std::sync::{Arc, Mutex, MutexGuard, OnceLock, PoisonError};

fn test_lock() -> MutexGuard<'static, ()> {
    static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
    LOCK.get_or_init(|| Mutex::new(()))
        .lock()
        .unwrap_or_else(PoisonError::into_inner)
}

fn engine(seed: u64, verify: VerifyPolicy) -> FheEngine {
    FheEngine::new(CkksParams::test_tiny(), seed)
        .unwrap()
        .with_policy(OpPolicy {
            verify,
            ..OpPolicy::default()
        })
}

/// HMult → Rescale chain plus an independent HAdd, so one failing op
/// leaves a clean subset.
fn program() -> BatchProgram {
    let mut prog = BatchProgram::new();
    let m = prog
        .try_push(BatchOp::HMult(Slot::Input(0), Slot::Input(1)))
        .unwrap();
    prog.try_push(BatchOp::Rescale(m)).unwrap();
    prog.try_push(BatchOp::HAdd(Slot::Input(0), Slot::Input(1)))
        .unwrap();
    prog
}

fn inputs(e: &FheEngine) -> Vec<Ciphertext> {
    let a = e.encrypt_f64(&[1.5, -0.5, 2.0], e.max_level()).unwrap();
    let b = e.encrypt_f64(&[0.5, 3.0, -1.0], e.max_level()).unwrap();
    vec![a, b]
}

fn unwrap_all(results: Vec<Result<Ciphertext, NeoError>>) -> Vec<Ciphertext> {
    results.into_iter().map(|r| r.unwrap()).collect()
}

#[test]
fn verify_always_matches_verify_off_on_clean_runs() {
    let _l = test_lock();
    let e_off = engine(5, VerifyPolicy::Off);
    let e_on = engine(5, VerifyPolicy::Always);
    let prog = program();
    let (r_off, w_off) = neo_trace::record(|| {
        unwrap_all(e_off.execute_batch(&prog, &inputs(&e_off), false).unwrap())
    });
    let (r_on, w_on) =
        neo_trace::record(|| unwrap_all(e_on.execute_batch(&prog, &inputs(&e_on), false).unwrap()));
    // Same seed, same program: verification must not perturb results.
    assert_eq!(r_off, r_on);
    // The overhead is visible — and only on the verifying engine.
    assert_eq!(w_off.get(neo_trace::Counter::AbftChecks), 0);
    assert!(w_on.get(neo_trace::Counter::AbftChecks) > 0);
    assert!(w_on.get(neo_trace::Counter::AbftMacs) > 0);
}

#[test]
fn transient_op_fault_is_retried_bit_identically() {
    let _l = test_lock();
    let e = engine(7, VerifyPolicy::Off);
    let prog = program();
    let cts = inputs(&e);
    let clean = unwrap_all(e.execute_batch(&prog, &cts, false).unwrap());

    let plan = Arc::new(FaultPlan::new(11).with_site(FaultSite::CkksOp, FaultSpec::once()));
    let scope = FaultScope::install(plan.clone());
    let report = e.execute_batch_with_report(&prog, &cts, false, 2).unwrap();
    drop(scope);

    assert_eq!(plan.injected(FaultSite::CkksOp), 1);
    assert_eq!(report.total_retries(), 1);
    assert_eq!(report.total_recovered(), 1);
    assert_eq!(plan.recovered(FaultSite::CkksOp), 1);
    assert_eq!(
        unwrap_all(report.results),
        clean,
        "retry must be bit-identical"
    );

    // Keys were warmed once, in issue order, before the faulted run; a
    // fresh parallel execution over the now-cached keys agrees exactly.
    let again = unwrap_all(e.execute_batch(&prog, &cts, true).unwrap());
    assert_eq!(again, clean);
}

#[test]
fn exhausted_retries_isolate_the_op_and_complete_the_clean_subset() {
    let _l = test_lock();
    let e = engine(13, VerifyPolicy::Off);
    let prog = program();
    let cts = inputs(&e);
    let clean = unwrap_all(e.execute_batch(&prog, &cts, false).unwrap());

    // Two fires cover op 0's first attempt and its single retry; the
    // rescale is poisoned downstream, the independent hadd stays clean.
    let plan =
        Arc::new(FaultPlan::new(23).with_site(FaultSite::CkksOp, FaultSpec::always().max_fires(2)));
    let scope = FaultScope::install(plan.clone());
    let report = e.execute_batch_with_report(&prog, &cts, false, 1).unwrap();
    drop(scope);

    assert_eq!(plan.injected(FaultSite::CkksOp), 2);
    assert_eq!(report.retries_attempted, vec![1, 0, 0]);
    assert_eq!(report.faults_recovered, vec![0, 0, 0]);
    let kinds: Vec<_> = report
        .results
        .iter()
        .map(|r| r.as_ref().map_err(NeoError::kind).err())
        .collect();
    assert_eq!(kinds[0], Some(ErrorKind::FaultDetected));
    assert_eq!(kinds[1], Some(ErrorKind::PoisonedInput));
    assert_eq!(kinds[2], None);
    assert_eq!(
        report.results[2].as_ref().unwrap(),
        &clean[2],
        "untainted op must be bit-identical to the fault-free run"
    );
}

#[test]
fn poisoned_plan_is_quarantined_and_recovered() {
    let _l = test_lock();
    let e = engine(29, VerifyPolicy::Always);
    let prog = program();
    let cts = inputs(&e);
    let clean = unwrap_all(e.execute_batch(&prog, &cts, false).unwrap());
    let evictions_before = neo_ntt::cache::stats().evictions;

    let plan = Arc::new(FaultPlan::new(31).with_site(FaultSite::NttPlan, FaultSpec::once()));
    let scope = FaultScope::install(plan.clone());
    let report = e.execute_batch_with_report(&prog, &cts, false, 2).unwrap();
    drop(scope);

    assert_eq!(plan.injected(FaultSite::NttPlan), 1);
    assert!(report.total_retries() >= 1);
    assert!(
        report.plans_quarantined >= 1,
        "poisoned entry must be swept"
    );
    assert!(neo_ntt::cache::stats().evictions > evictions_before);
    assert_eq!(
        unwrap_all(report.results),
        clean,
        "recovery after quarantine must be bit-identical"
    );
}

#[test]
fn injected_ntt_stage_fault_is_detected_not_silent() {
    let _l = test_lock();
    let e = engine(37, VerifyPolicy::Always);
    let a = e.encrypt_f64(&[1.0, 2.0], e.max_level()).unwrap();
    let b = e.encrypt_f64(&[3.0, 4.0], e.max_level()).unwrap();

    let plan = Arc::new(FaultPlan::new(41).with_site(FaultSite::NttStage, FaultSpec::once()));
    let scope = FaultScope::install(plan.clone());
    let err = e.hmult(&a, &b).unwrap_err();
    drop(scope);

    assert_eq!(plan.injected(FaultSite::NttStage), 1);
    assert_eq!(err.kind(), ErrorKind::FaultDetected);
    let NeoError::FaultDetected { site, .. } = err else {
        panic!("expected FaultDetected, got {err}");
    };
    assert!(
        site.starts_with("ntt_"),
        "detection site should name the NTT, got {site}"
    );
}
