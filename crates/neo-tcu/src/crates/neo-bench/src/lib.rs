//! Shared helpers for the neo-bench table/figure binaries.
