use neo_ckks::cost::*;
use neo_ckks::params::ParamSet;
use neo_gpu_sim::DeviceModel;

fn main() {
    let dev = DeviceModel::a100();
    for (name, p, cfg) in [
        ("tensorfhe-A", ParamSet::A.params(), CostConfig::tensorfhe()),
        ("neo-C", ParamSet::C.params(), CostConfig::neo()),
        ("heongpu-E", ParamSet::E.params(), CostConfig::heongpu()),
    ] {
        let seq = keyswitch_profiles(&p, 35, &cfg);
        println!("== {name} ==");
        let mut groups: std::collections::BTreeMap<String, (f64,f64,f64,f64)> = Default::default();
        for pr in &seq {
            let (c,t,m,_) = dev.component_times(pr);
            let e = groups.entry(pr.name.clone()).or_default();
            e.0 += c*1e6; e.1 += t*1e6; e.2 += m*1e6; e.3 += 1.0;
        }
        for (k,v) in &groups {
            println!("  {k:14} cuda {:9.0}us tcu {:9.0}us mem {:9.0}us x{}", v.0, v.1, v.2, v.3);
        }
        let t = keyswitch_time_us(&dev, &p, 35, &cfg);
        println!("  keyswitch per-ct: {t:.0} us");
    }
}
