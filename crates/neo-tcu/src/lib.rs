//! Tensor-core (TCU) emulation for the Neo reproduction.
//!
//! NVIDIA tensor cores execute fixed-shape fragment matrix-multiply-
//! accumulate (MMA) operations. The A100 supports, among others:
//!
//! * `FP64` fragments of shape **8×8×4** (Neo's workhorse), and
//! * `INT8` fragments of shape **16×16×16**, **32×8×16**, **8×32×16**
//!   (TensorFHE's choice).
//!
//! Neither data type can represent a 36- or 48-bit CKKS limb directly, so
//! modular GEMMs are *emulated* by splitting operands into low-bit planes,
//! running one fragment GEMM per plane pair, and merging the partial
//! products with shifts before modular reduction (Section 3.4 of the
//! paper). This crate reproduces that pipeline **bit-exactly** in software:
//!
//! * [`fragment`] — the raw fragment MMA semantics (f64 FMA grids, i32
//!   accumulating u8 products);
//! * [`split`] — the FP64 12/24-bit splitting schemes and INT8 byte planes,
//!   with exactness checks (`wa + wb + log2(K) ≤ 53`);
//! * [`gemm`] — the [`GemmEngine`] trait plus four engines: scalar
//!   reference, compute-backend (optionally vectorized), FP64-TCU, and
//!   INT8-TCU, all producing identical results;
//! * [`stats`] — Booth complexity, fragment counts, padding and the
//!   *valid proportion* metric of the paper's Fig. 12.
//!
//! # Example
//!
//! ```rust
//! use neo_math::Modulus;
//! use neo_tcu::{Fp64TcuGemm, GemmEngine, ScalarGemm};
//!
//! # fn main() -> Result<(), neo_math::MathError> {
//! let q = Modulus::new(neo_math::primes::ntt_primes(36, 1 << 10, 1)?[0])?;
//! let a = vec![123456789u64 % q.value(); 8 * 4];
//! let b = vec![987654321u64 % q.value(); 4 * 8];
//! let mut c_ref = vec![0u64; 8 * 8];
//! let mut c_tcu = vec![0u64; 8 * 8];
//! ScalarGemm.gemm(&q, &a, &b, 8, 4, 8, &mut c_ref);
//! Fp64TcuGemm::for_word_size(36).gemm(&q, &a, &b, 8, 4, 8, &mut c_tcu);
//! assert_eq!(c_ref, c_tcu);
//! # Ok(())
//! # }
//! ```

pub mod abft;
pub mod fragment;
pub mod gemm;
pub mod metrics;
pub mod multimod;
pub mod split;
pub mod stats;

pub use abft::{verify_gemm, CheckedGemm};
pub use fragment::{FragmentShape, FP64_FRAGMENT, INT8_FRAGMENTS};
pub use gemm::{reference_gemm, BackendGemm, Fp64TcuGemm, GemmEngine, Int8TcuGemm, ScalarGemm};
pub use multimod::{gemm_multi_mod_fp64, gemm_multi_mod_int8, gemm_multi_mod_scalar};
pub use split::{Fp64SplitScheme, Int8SplitScheme};
pub use stats::{booth_complexity_fp64, booth_complexity_int8, valid_proportion, GemmDims};
