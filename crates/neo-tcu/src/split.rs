//! Operand bit-splitting schemes for wide-integer GEMM on narrow TCU types.
//!
//! The paper's key numerical observation (Section 3.4): FP64 offers 53 bits
//! of exact integer precision, so a `WordSize = 36` modular matrix product
//! can be computed with **three** FP64 fragment GEMMs (split `B` into three
//! 12-bit planes; `2^36 · 2^12 · 16 = 2^52 < 2^53`), while INT8 requires
//! `⌈36/8⌉² = 25` partial GEMMs in a cross pattern. For `WordSize = 48` the
//! FP64 scheme splits both operands into two 24-bit planes (4 partials, the
//! paper's "2 × 2 = 4" Booth complexity) versus 36 for INT8.
//!
//! Schemes support asymmetric operand widths (`wa ≠ wb`), which BConv needs
//! when converting between bases of different word sizes.

/// FP64 plane-splitting scheme for one modular GEMM.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Fp64SplitScheme {
    wa: u32,
    wb: u32,
    a_chunks: Vec<u32>,
    b_chunks: Vec<u32>,
    max_k: usize,
}

impl Fp64SplitScheme {
    /// The paper's scheme for symmetric operands of `word_size` bits,
    /// valid for reduction depths up to `max_k = 16`:
    ///
    /// * 36-bit words: `A` whole (one 36-bit chunk), `B` in three 12-bit
    ///   planes → 3 partial GEMMs;
    /// * 48-bit words: both operands in two 24-bit planes → 4 partials.
    ///
    /// # Panics
    ///
    /// Panics for word sizes above 64 bits.
    pub fn for_word_size(word_size: u32) -> Self {
        Self::for_operands(word_size, word_size)
    }

    /// The cheapest exact scheme for operand widths `wa`/`wb` (e.g. BConv
    /// from a 36-bit source into a 48-bit target, or the KLSS IP where both
    /// operands are 48-bit):
    ///
    /// * if `wa + 12 + log2(16) ≤ 53`, keep `A` whole and split `B` into
    ///   12-bit planes (`⌈wb/12⌉` partials);
    /// * otherwise split both operands into 24-bit planes (`⌈w/24⌉` each —
    ///   2 for 48-bit words, 3 for 64-bit words, so `WordSize_T = 64`
    ///   carries the paper's 3×3 = 9 Booth penalty).
    ///
    /// # Panics
    ///
    /// Panics if either width exceeds 64 bits.
    pub fn for_operands(wa: u32, wb: u32) -> Self {
        assert!(
            (1..=64).contains(&wa) && (1..=64).contains(&wb),
            "widths {wa}/{wb} unsupported"
        );
        if wa + 12 + 4 <= 53 {
            Self::new(wa, wb, vec![wa], vec![12; wb.div_ceil(12) as usize], 16)
        } else {
            Self::new(
                wa,
                wb,
                vec![24; wa.div_ceil(24) as usize],
                vec![24; wb.div_ceil(24) as usize],
                16,
            )
        }
    }

    /// Builds a custom scheme, validating exactness: every partial product
    /// plus accumulation must stay below `2^53`:
    /// `max(a_chunk) + max(b_chunk) + ceil(log2(max_k)) <= 53`.
    ///
    /// # Panics
    ///
    /// Panics if the chunks do not cover their operand widths or exactness
    /// would break.
    pub fn new(wa: u32, wb: u32, a_chunks: Vec<u32>, b_chunks: Vec<u32>, max_k: usize) -> Self {
        assert!(
            a_chunks.iter().sum::<u32>() >= wa,
            "A chunks must cover the word"
        );
        assert!(
            b_chunks.iter().sum::<u32>() >= wb,
            "B chunks must cover the word"
        );
        let ca = *a_chunks.iter().max().expect("at least one A chunk");
        let cb = *b_chunks.iter().max().expect("at least one B chunk");
        let log_k = (max_k.max(2) as f64).log2().ceil() as u32;
        assert!(
            ca + cb + log_k <= 53,
            "scheme not exact: {ca} + {cb} + log2({max_k}) exceeds 53 bits"
        );
        Self {
            wa,
            wb,
            a_chunks,
            b_chunks,
            max_k,
        }
    }

    /// Width of operand A in bits.
    pub fn a_width(&self) -> u32 {
        self.wa
    }

    /// Width of operand B in bits.
    pub fn b_width(&self) -> u32 {
        self.wb
    }

    /// The wider of the two operand widths (back-compat accessor).
    pub fn word_size(&self) -> u32 {
        self.wa.max(self.wb)
    }

    /// Maximum reduction depth the exactness proof covers.
    pub fn max_k(&self) -> usize {
        self.max_k
    }

    /// Number of planes operand A is split into.
    pub fn a_planes(&self) -> usize {
        self.a_chunks.len()
    }

    /// Number of planes operand B is split into.
    pub fn b_planes(&self) -> usize {
        self.b_chunks.len()
    }

    /// Number of partial fragment GEMMs (the paper's FP64 "Booth
    /// complexity"): `a_planes * b_planes`.
    pub fn partial_products(&self) -> usize {
        self.a_chunks.len() * self.b_chunks.len()
    }

    /// Splits a slice of `u64` words into planes of `f64`, least-significant
    /// plane first, paired with each plane's bit offset.
    pub fn split_a(&self, data: &[u64]) -> Vec<(u32, Vec<f64>)> {
        split_planes(data, &self.a_chunks)
    }

    /// Splits operand B; see [`Fp64SplitScheme::split_a`].
    pub fn split_b(&self, data: &[u64]) -> Vec<(u32, Vec<f64>)> {
        split_planes(data, &self.b_chunks)
    }
}

fn split_planes(data: &[u64], chunks: &[u32]) -> Vec<(u32, Vec<f64>)> {
    neo_trace::add(
        neo_trace::Counter::SplitOps,
        (data.len() * chunks.len()) as u64,
    );
    let mut out = Vec::with_capacity(chunks.len());
    let mut offset = 0u32;
    for &w in chunks {
        let mask = if w >= 64 { u64::MAX } else { (1u64 << w) - 1 };
        let plane = data
            .iter()
            .map(|&v| ((v >> offset) & mask) as f64)
            .collect();
        out.push((offset, plane));
        offset += w;
    }
    out
}

/// INT8 byte-plane splitting (TensorFHE's approach).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Int8SplitScheme {
    wa: u32,
    wb: u32,
    planes_a: usize,
    planes_b: usize,
}

impl Int8SplitScheme {
    /// Byte planes for symmetric operands: `⌈word_size / 8⌉` per operand.
    pub fn for_word_size(word_size: u32) -> Self {
        Self::for_operands(word_size, word_size)
    }

    /// Byte planes for asymmetric operand widths.
    ///
    /// # Panics
    ///
    /// Panics if either width exceeds 64 bits (the merge-shift budget).
    pub fn for_operands(wa: u32, wb: u32) -> Self {
        assert!(
            (1..=64).contains(&wa) && (1..=64).contains(&wb),
            "widths {wa}/{wb} unsupported for INT8"
        );
        Self {
            wa,
            wb,
            planes_a: wa.div_ceil(8) as usize,
            planes_b: wb.div_ceil(8) as usize,
        }
    }

    /// The wider operand width.
    pub fn word_size(&self) -> u32 {
        self.wa.max(self.wb)
    }

    /// Byte planes of operand A.
    pub fn planes_a(&self) -> usize {
        self.planes_a
    }

    /// Byte planes of operand B.
    pub fn planes_b(&self) -> usize {
        self.planes_b
    }

    /// Byte planes per operand when symmetric (max of the two otherwise).
    pub fn planes(&self) -> usize {
        self.planes_a.max(self.planes_b)
    }

    /// Partial GEMMs in the cross pattern (the INT8 Booth complexity):
    /// 25 for 36-bit words, 36 for 48-bit words.
    pub fn partial_products(&self) -> usize {
        self.planes_a * self.planes_b
    }

    /// Splits operand A into byte planes (LSB first) with bit offsets.
    pub fn split_a(&self, data: &[u64]) -> Vec<(u32, Vec<u8>)> {
        split_bytes(data, self.planes_a)
    }

    /// Splits operand B into byte planes (LSB first) with bit offsets.
    pub fn split_b(&self, data: &[u64]) -> Vec<(u32, Vec<u8>)> {
        split_bytes(data, self.planes_b)
    }
}

fn split_bytes(data: &[u64], planes: usize) -> Vec<(u32, Vec<u8>)> {
    neo_trace::add(neo_trace::Counter::SplitOps, (data.len() * planes) as u64);
    (0..planes)
        .map(|p| {
            let off = 8 * p as u32;
            (
                off,
                data.iter().map(|&v| ((v >> off) & 0xFF) as u8).collect(),
            )
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_schemes() {
        let s36 = Fp64SplitScheme::for_word_size(36);
        assert_eq!(s36.partial_products(), 3);
        let s48 = Fp64SplitScheme::for_word_size(48);
        assert_eq!(s48.partial_products(), 4);
        assert_eq!(Int8SplitScheme::for_word_size(36).partial_products(), 25);
        assert_eq!(Int8SplitScheme::for_word_size(48).partial_products(), 36);
    }

    #[test]
    fn asymmetric_schemes() {
        // 36-bit A against 48-bit B: A whole, B in four 12-bit planes.
        let s = Fp64SplitScheme::for_operands(36, 48);
        assert_eq!(s.a_planes(), 1);
        assert_eq!(s.b_planes(), 4);
        // 48-bit A forces the 24-bit scheme.
        let s = Fp64SplitScheme::for_operands(48, 36);
        assert_eq!(s.partial_products(), 2 * 2);
        let i = Int8SplitScheme::for_operands(36, 48);
        assert_eq!(i.partial_products(), 5 * 6);
    }

    #[test]
    #[should_panic(expected = "not exact")]
    fn rejects_inexact_scheme() {
        // 40 + 12 + 4 = 56 > 53
        let _ = Fp64SplitScheme::new(40, 48, vec![40], vec![12, 12, 12, 12], 16);
    }

    #[test]
    #[should_panic(expected = "cover the word")]
    fn rejects_undersized_chunks() {
        let _ = Fp64SplitScheme::new(36, 36, vec![36], vec![12, 12], 16);
    }

    #[test]
    fn fp64_planes_reassemble() {
        let s = Fp64SplitScheme::for_word_size(36);
        let data = vec![0x0A_BC_DE_F0_12u64, (1 << 36) - 1, 0];
        let planes = s.split_b(&data);
        assert_eq!(planes.len(), 3);
        for (i, &v) in data.iter().enumerate() {
            let mut acc = 0u64;
            for (off, plane) in &planes {
                acc += (plane[i] as u64) << off;
            }
            assert_eq!(acc, v);
        }
    }

    #[test]
    fn int8_planes_reassemble() {
        let s = Int8SplitScheme::for_word_size(48);
        let data = vec![0xFEDC_BA98_7654u64, 1, (1 << 48) - 1];
        let planes = s.split_b(&data);
        assert_eq!(planes.len(), 6);
        for (i, &v) in data.iter().enumerate() {
            let mut acc = 0u64;
            for (off, plane) in &planes {
                acc += (plane[i] as u64) << off;
            }
            assert_eq!(acc, v);
        }
    }
}
