//! `neo-metrics` integration: GEMM latency histograms and ABFT
//! verification counters.
//!
//! [`BackendGemm`](crate::gemm::BackendGemm) records per-call wall-clock
//! into `tcu_gemm_ns{engine}` (one histogram per backend kind, handles
//! cached in `LazyLock`s); [`verify_gemm`](crate::abft::verify_gemm)
//! counts checks and detections under `tcu_abft_checks_total` /
//! `tcu_abft_detections_total`. Everything is gated on
//! [`neo_metrics::enabled`] before a clock or handle is touched.

use neo_math::BackendKind;
use neo_metrics::{CounterHandle, Histogram};
use std::sync::{Arc, LazyLock};

static GEMM_NS_PORTABLE: LazyLock<Arc<Histogram>> =
    LazyLock::new(|| neo_metrics::histogram("tcu_gemm_ns", &[("engine", "portable")]));
static GEMM_NS_SIMD: LazyLock<Arc<Histogram>> =
    LazyLock::new(|| neo_metrics::histogram("tcu_gemm_ns", &[("engine", "simd")]));

/// ABFT verifications run.
pub(crate) static ABFT_CHECKS: LazyLock<Arc<CounterHandle>> =
    LazyLock::new(|| neo_metrics::counter("tcu_abft_checks_total", &[]));
/// ABFT verifications that detected corruption.
pub(crate) static ABFT_DETECTIONS: LazyLock<Arc<CounterHandle>> =
    LazyLock::new(|| neo_metrics::counter("tcu_abft_detections_total", &[]));

/// The latency histogram for a backend kind.
pub(crate) fn gemm_hist(kind: BackendKind) -> &'static Arc<Histogram> {
    match kind {
        BackendKind::Portable => &GEMM_NS_PORTABLE,
        BackendKind::Simd => &GEMM_NS_SIMD,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gemm::{BackendGemm, GemmEngine};
    use neo_math::{primes, Modulus};

    #[test]
    fn backend_gemm_records_latency_and_abft_counts() {
        let q = Modulus::new(primes::ntt_primes(36, 8, 1).expect("primes")[0]).expect("modulus");
        let a = vec![1u64; 16];
        let b = vec![2u64; 16];
        let mut c = vec![0u64; 16];
        let engine = BackendGemm::new(BackendKind::Portable);

        neo_metrics::enable();
        let before = gemm_hist(BackendKind::Portable).count();
        let checks_before = ABFT_CHECKS.get();
        engine.gemm(&q, &a, &b, 4, 4, 4, &mut c);
        crate::abft::verify_gemm(&q, &a, &b, 4, 4, 4, &c).expect("clean gemm verifies");
        neo_metrics::disable();

        assert_eq!(gemm_hist(BackendKind::Portable).count(), before + 1);
        assert_eq!(ABFT_CHECKS.get(), checks_before + 1);

        // Corrupt one limb: the check fails and the detection counter moves.
        neo_metrics::enable();
        let det_before = ABFT_DETECTIONS.get();
        c[5] ^= 1 << 17;
        assert!(crate::abft::verify_gemm(&q, &a, &b, 4, 4, 4, &c).is_err());
        neo_metrics::disable();
        assert_eq!(ABFT_DETECTIONS.get(), det_before + 1);
    }
}
