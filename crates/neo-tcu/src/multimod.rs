//! GEMM with a *different modulus per output column* — the shape BConv
//! takes after Neo's data-layout transformation (Algorithm 2): the rows of
//! `A` are scaled residues `y_i = [x_i·q̂_i⁻¹]_{q_i}` and column `j` of `B`
//! holds `q̂_i mod t_j`, so column `j` of the product must reduce mod `t_j`.
//!
//! The fragment hardware accumulates plain integers; only the *merge* step
//! is per-column modular, exactly as on the GPU.

use crate::fragment::{self, FragmentShape, FP64_FRAGMENT, INT8_FRAGMENTS};
use crate::split::{Fp64SplitScheme, Int8SplitScheme};
use neo_math::Modulus;
use neo_trace::Counter;

/// Scalar reference: per-column modular accumulation.
///
/// # Panics
///
/// Panics on shape mismatch or if `cols.len() != n`.
pub fn gemm_multi_mod_scalar(
    cols: &[Modulus],
    a: &[u64],
    b: &[u64],
    m: usize,
    k: usize,
    n: usize,
    out: &mut [u64],
) {
    assert_eq!(cols.len(), n, "one modulus per output column");
    assert_eq!(a.len(), m * k);
    assert_eq!(b.len(), k * n);
    assert_eq!(out.len(), m * n);
    neo_trace::add(Counter::GemmMacs, (m * k * n) as u64);
    for i in 0..m {
        for (j, t) in cols.iter().enumerate() {
            let mut acc = 0u64;
            for x in 0..k {
                acc = t.add(
                    acc,
                    t.reduce_u128(a[i * k + x] as u128 * b[x * n + j] as u128),
                );
            }
            out[i * n + j] = acc;
        }
    }
}

/// FP64 tensor-core path: split → fragment MMAs → per-column shift-merge.
///
/// Exactness requires `A` entries below `2^scheme.a_width()` and `B`
/// entries below `2^scheme.b_width()`.
///
/// # Panics
///
/// Panics on shape mismatch.
#[allow(clippy::too_many_arguments)]
pub fn gemm_multi_mod_fp64(
    scheme: &Fp64SplitScheme,
    cols: &[Modulus],
    a: &[u64],
    b: &[u64],
    m: usize,
    k: usize,
    n: usize,
    out: &mut [u64],
) {
    assert_eq!(cols.len(), n, "one modulus per output column");
    assert_eq!(a.len(), m * k);
    assert_eq!(b.len(), k * n);
    assert_eq!(out.len(), m * n);
    out.fill(0);
    let a_planes = scheme.split_a(a);
    let b_planes = scheme.split_b(b);
    let kc = scheme.max_k();
    for k0 in (0..k).step_by(kc) {
        let kw = kc.min(k - k0);
        for (off_a, pa) in &a_planes {
            for (off_b, pb) in &b_planes {
                let shift = off_a + off_b;
                let tile = tiled_fp64(pa, pb, m, k, n, k0, kw);
                neo_trace::add(Counter::MergeOps, (m * n) as u64);
                for i in 0..m {
                    for (j, t) in cols.iter().enumerate() {
                        let v = tile[i * n + j];
                        debug_assert!((0.0..9_007_199_254_740_992.0).contains(&v));
                        let contrib = t.reduce_u128((v as u128) << shift);
                        out[i * n + j] = t.add(out[i * n + j], contrib);
                    }
                }
            }
        }
    }
}

fn tiled_fp64(
    pa: &[f64],
    pb: &[f64],
    m: usize,
    k: usize,
    n: usize,
    k0: usize,
    kw: usize,
) -> Vec<f64> {
    let (fm, fn_, fk) = (FP64_FRAGMENT.m, FP64_FRAGMENT.n, FP64_FRAGMENT.k);
    let mut out = vec![0.0f64; m * n];
    let mut fa = [0.0f64; 32];
    let mut fb = [0.0f64; 32];
    let mut fc = [0.0f64; 64];
    for i0 in (0..m).step_by(fm) {
        for j0 in (0..n).step_by(fn_) {
            fc.fill(0.0);
            for t0 in (k0..k0 + kw).step_by(fk) {
                fa.fill(0.0);
                fb.fill(0.0);
                for i in 0..fm.min(m - i0) {
                    for t in 0..fk.min(k0 + kw - t0) {
                        fa[i * fk + t] = pa[(i0 + i) * k + (t0 + t)];
                    }
                }
                for t in 0..fk.min(k0 + kw - t0) {
                    for j in 0..fn_.min(n - j0) {
                        fb[t * fn_ + j] = pb[(t0 + t) * n + (j0 + j)];
                    }
                }
                fragment::mma_fp64(&fa, &fb, &mut fc);
            }
            for i in 0..fm.min(m - i0) {
                for j in 0..fn_.min(n - j0) {
                    out[(i0 + i) * n + (j0 + j)] = fc[i * fn_ + j];
                }
            }
        }
    }
    out
}

/// INT8 tensor-core path with byte planes (the TensorFHE-style mapping the
/// paper compares against in Fig. 11).
///
/// # Panics
///
/// Panics on shape mismatch or an unsupported fragment shape.
#[allow(clippy::too_many_arguments)]
pub fn gemm_multi_mod_int8(
    scheme: &Int8SplitScheme,
    shape: FragmentShape,
    cols: &[Modulus],
    a: &[u64],
    b: &[u64],
    m: usize,
    k: usize,
    n: usize,
    out: &mut [u64],
) {
    assert!(
        INT8_FRAGMENTS.contains(&shape),
        "unsupported INT8 fragment {shape}"
    );
    assert_eq!(cols.len(), n, "one modulus per output column");
    assert_eq!(a.len(), m * k);
    assert_eq!(b.len(), k * n);
    assert_eq!(out.len(), m * n);
    out.fill(0);
    let a_planes = scheme.split_a(a);
    let b_planes = scheme.split_b(b);
    for (off_a, pa) in &a_planes {
        for (off_b, pb) in &b_planes {
            let shift = off_a + off_b;
            let tile = tiled_int8(shape, pa, pb, m, k, n);
            neo_trace::add(Counter::MergeOps, (m * n) as u64);
            for i in 0..m {
                for (j, t) in cols.iter().enumerate() {
                    let contrib = t.reduce_u128((tile[i * n + j] as u128) << shift);
                    out[i * n + j] = t.add(out[i * n + j], contrib);
                }
            }
        }
    }
}

fn tiled_int8(
    shape: FragmentShape,
    pa: &[u8],
    pb: &[u8],
    m: usize,
    k: usize,
    n: usize,
) -> Vec<u64> {
    let (fm, fn_, fk) = (shape.m, shape.n, shape.k);
    let mut out = vec![0u64; m * n];
    let mut fa = vec![0u8; fm * fk];
    let mut fb = vec![0u8; fk * fn_];
    let mut fc = vec![0i32; fm * fn_];
    for i0 in (0..m).step_by(fm) {
        for j0 in (0..n).step_by(fn_) {
            fc.fill(0);
            for t0 in (0..k).step_by(fk) {
                fa.fill(0);
                fb.fill(0);
                for i in 0..fm.min(m - i0) {
                    for t in 0..fk.min(k - t0) {
                        fa[i * fk + t] = pa[(i0 + i) * k + (t0 + t)];
                    }
                }
                for t in 0..fk.min(k - t0) {
                    for j in 0..fn_.min(n - j0) {
                        fb[t * fn_ + j] = pb[(t0 + t) * n + (j0 + j)];
                    }
                }
                fragment::mma_int8(shape, &fa, &fb, &mut fc);
            }
            for i in 0..fm.min(m - i0) {
                for j in 0..fn_.min(n - j0) {
                    out[(i0 + i) * n + (j0 + j)] = fc[i * fn_ + j] as u64;
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use neo_math::primes;
    use rand::{Rng, SeedableRng};

    fn setup(
        m: usize,
        k: usize,
        n: usize,
        wa: u32,
        wb: u32,
        seed: u64,
    ) -> (Vec<Modulus>, Vec<u64>, Vec<u64>) {
        let cols: Vec<Modulus> = primes::ntt_primes(wb, 1 << 8, n)
            .unwrap()
            .into_iter()
            .map(|q| Modulus::new(q).unwrap())
            .collect();
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let a: Vec<u64> = (0..m * k).map(|_| rng.gen_range(0..1u64 << wa)).collect();
        // Column j of B is reduced mod t_j.
        let mut b = vec![0u64; k * n];
        for t in 0..k {
            for (j, c) in cols.iter().enumerate() {
                b[t * n + j] = rng.gen_range(0..c.value());
            }
        }
        (cols, a, b)
    }

    #[test]
    fn fp64_matches_scalar_bconv_shape() {
        // BConv-like: a-values 36-bit, columns 40-bit, K = alpha = 4.
        let (cols, a, b) = setup(24, 4, 6, 36, 40, 42);
        let mut want = vec![0u64; 24 * 6];
        let mut got = vec![0u64; 24 * 6];
        gemm_multi_mod_scalar(&cols, &a, &b, 24, 4, 6, &mut want);
        let scheme = Fp64SplitScheme::for_operands(36, 40);
        gemm_multi_mod_fp64(&scheme, &cols, &a, &b, 24, 4, 6, &mut got);
        assert_eq!(want, got);
    }

    #[test]
    fn fp64_matches_scalar_wide_operands() {
        // KLSS recover-limbs-like: both operands 48-bit, long K.
        let (cols, a, b) = setup(8, 20, 4, 48, 48, 43);
        let mut want = vec![0u64; 8 * 4];
        let mut got = vec![0u64; 8 * 4];
        gemm_multi_mod_scalar(&cols, &a, &b, 8, 20, 4, &mut want);
        let scheme = Fp64SplitScheme::for_operands(48, 48);
        gemm_multi_mod_fp64(&scheme, &cols, &a, &b, 8, 20, 4, &mut got);
        assert_eq!(want, got);
    }

    #[test]
    fn int8_matches_scalar() {
        let (cols, a, b) = setup(16, 4, 8, 36, 40, 44);
        let mut want = vec![0u64; 16 * 8];
        let mut got = vec![0u64; 16 * 8];
        gemm_multi_mod_scalar(&cols, &a, &b, 16, 4, 8, &mut want);
        let scheme = Int8SplitScheme::for_operands(36, 40);
        gemm_multi_mod_int8(
            &scheme,
            INT8_FRAGMENTS[1],
            &cols,
            &a,
            &b,
            16,
            4,
            8,
            &mut got,
        );
        assert_eq!(want, got);
    }
}
