//! Modular GEMM engines.
//!
//! [`GemmEngine`] is the pluggable matrix-multiplication backend used by the
//! NTT, BConv and IP kernels. Four engines are provided:
//!
//! * [`ScalarGemm`] — straightforward modular arithmetic (the CUDA-core
//!   path, and the correctness oracle);
//! * [`BackendGemm`] — the same contract routed through a pinned
//!   [`neo_math::ComputeBackend`], so the inner loop can run vectorized;
//! * [`Fp64TcuGemm`] — Neo's pipeline: split → FP64 `8×8×4` fragment MMAs →
//!   shift-merge → reduce;
//! * [`Int8TcuGemm`] — TensorFHE's pipeline with byte planes and INT8
//!   fragments.
//!
//! All four produce **identical** outputs for reduced inputs; the TCU
//! engines really route every multiply through the fragment emulation in
//! [`crate::fragment`].

use crate::fragment::{self, FragmentShape, FP64_FRAGMENT, INT8_FRAGMENTS};
use crate::split::{Fp64SplitScheme, Int8SplitScheme};
use neo_math::{BackendKind, Modulus, PortableBackend};
use neo_trace::Counter;
use std::cell::RefCell;

thread_local! {
    // Per-plane-pair accumulator tiles, reused across gemm calls so the
    // hot NTT/BConv paths don't allocate on every invocation.
    static FP64_TILE: RefCell<Vec<f64>> = const { RefCell::new(Vec::new()) };
    static INT8_TILE: RefCell<Vec<i64>> = const { RefCell::new(Vec::new()) };
}

/// A backend that computes `C = A × B (mod q)` for row-major `u64`
/// matrices: `A` is `m×k`, `B` is `k×n`, `C` is `m×n`.
pub trait GemmEngine {
    /// Computes the modular product into `out`.
    ///
    /// # Panics
    ///
    /// Implementations panic if slice lengths disagree with the dimensions
    /// or operands are not reduced mod `q`.
    #[allow(clippy::too_many_arguments)]
    fn gemm(
        &self,
        q: &Modulus,
        a: &[u64],
        b: &[u64],
        m: usize,
        k: usize,
        n: usize,
        out: &mut [u64],
    );

    /// Short name for diagnostics/benches.
    fn name(&self) -> &'static str;
}

/// Modular GEMM on scalar units (CUDA-core path).
///
/// Runs an i-k-j loop over a row of `u128` accumulators with deferred
/// reduction: inside one K-span no modular reduction happens at all, and
/// the span length is chosen so the accumulators provably cannot wrap.
/// Output is bit-identical to [`reference_gemm`] — both land on the
/// canonical representative in `[0, q)`.
#[derive(Debug, Clone, Copy, Default)]
pub struct ScalarGemm;

impl GemmEngine for ScalarGemm {
    fn gemm(
        &self,
        q: &Modulus,
        a: &[u64],
        b: &[u64],
        m: usize,
        k: usize,
        n: usize,
        out: &mut [u64],
    ) {
        check_dims(a, b, out, m, k, n);
        neo_trace::add(Counter::GemmMacs, (m * k * n) as u64);
        use neo_math::ComputeBackend;
        PortableBackend.gemm(q, a, b, m, k, n, out);
    }

    fn name(&self) -> &'static str {
        "scalar"
    }
}

/// Modular GEMM dispatched through a [`neo_math::ComputeBackend`].
///
/// Same contract and telemetry as [`ScalarGemm`] — `GemmMacs` tallies the
/// full `m·k·n` regardless of backend — but the i-k-j inner loop runs on
/// the pinned backend, which may use vector lanes. Output is bit-identical
/// to [`ScalarGemm`] and [`reference_gemm`]: every backend folds its
/// accumulators on the same K-span schedule and emits the canonical
/// representative in `[0, q)`.
#[derive(Debug, Clone, Copy)]
pub struct BackendGemm {
    kind: BackendKind,
}

impl BackendGemm {
    /// Engine pinned to `kind`.
    pub fn new(kind: BackendKind) -> Self {
        Self { kind }
    }

    /// Engine using the process-default backend ([`BackendKind::detect`]):
    /// the `NEO_BACKEND` override if set, otherwise the best backend the
    /// build and CPU support.
    pub fn auto() -> Self {
        Self::new(BackendKind::detect())
    }

    /// The pinned backend kind.
    pub fn kind(&self) -> BackendKind {
        self.kind
    }
}

impl Default for BackendGemm {
    fn default() -> Self {
        Self::auto()
    }
}

impl GemmEngine for BackendGemm {
    fn gemm(
        &self,
        q: &Modulus,
        a: &[u64],
        b: &[u64],
        m: usize,
        k: usize,
        n: usize,
        out: &mut [u64],
    ) {
        check_dims(a, b, out, m, k, n);
        neo_trace::add(Counter::GemmMacs, (m * k * n) as u64);
        // Gate before touching the clock: one relaxed load when disabled.
        let t0 = neo_metrics::enabled().then(std::time::Instant::now);
        neo_math::backend::get(self.kind).gemm(q, a, b, m, k, n, out);
        if let Some(t0) = t0 {
            crate::metrics::gemm_hist(self.kind).record_ns(t0.elapsed().as_nanos() as u64);
        }
    }

    fn name(&self) -> &'static str {
        self.kind.name()
    }
}

/// The `O(m·k·n)` fully-reduced oracle: one `mul` + `add` per term, a
/// modular reduction after every operation. [`ScalarGemm`] is property
/// tested to match this bit for bit.
pub fn reference_gemm(
    q: &Modulus,
    a: &[u64],
    b: &[u64],
    m: usize,
    k: usize,
    n: usize,
    out: &mut [u64],
) {
    check_dims(a, b, out, m, k, n);
    for i in 0..m {
        for j in 0..n {
            let mut acc = 0u64;
            for t in 0..k {
                acc = q.add(acc, q.mul(a[i * k + t], b[t * n + j]));
            }
            out[i * n + j] = acc;
        }
    }
}

fn check_dims(a: &[u64], b: &[u64], out: &[u64], m: usize, k: usize, n: usize) {
    assert_eq!(a.len(), m * k, "A shape mismatch");
    assert_eq!(b.len(), k * n, "B shape mismatch");
    assert_eq!(out.len(), m * n, "C shape mismatch");
}

/// Neo's FP64 tensor-core GEMM.
#[derive(Debug, Clone)]
pub struct Fp64TcuGemm {
    scheme: Fp64SplitScheme,
}

impl Fp64TcuGemm {
    /// Engine with the paper's splitting scheme for `word_size`.
    pub fn for_word_size(word_size: u32) -> Self {
        Self {
            scheme: Fp64SplitScheme::for_word_size(word_size),
        }
    }

    /// Engine with a custom scheme.
    pub fn new(scheme: Fp64SplitScheme) -> Self {
        Self { scheme }
    }

    /// The active splitting scheme.
    pub fn scheme(&self) -> &Fp64SplitScheme {
        &self.scheme
    }
}

impl GemmEngine for Fp64TcuGemm {
    fn gemm(
        &self,
        q: &Modulus,
        a: &[u64],
        b: &[u64],
        m: usize,
        k: usize,
        n: usize,
        out: &mut [u64],
    ) {
        check_dims(a, b, out, m, k, n);
        debug_assert!(
            q.bits() <= self.scheme.word_size(),
            "modulus wider than the splitting scheme's word size"
        );
        out.fill(0);
        let a_planes = self.scheme.split_a(a);
        let b_planes = self.scheme.split_b(b);
        let kc = self.scheme.max_k();
        // Process the reduction dimension in chunks the exactness bound
        // covers; real kernels interleave a modular reduction the same way.
        FP64_TILE.with(|cell| {
            let mut tile = cell.borrow_mut();
            for k0 in (0..k).step_by(kc) {
                let kw = kc.min(k - k0);
                for (off_a, pa) in &a_planes {
                    for (off_b, pb) in &b_planes {
                        let shift = off_a + off_b;
                        fragment_tiled_gemm_fp64(pa, pb, m, k, n, k0, kw, &mut tile);
                        neo_trace::add(Counter::MergeOps, (m * n) as u64);
                        for (o, &v) in out.iter_mut().zip(tile.iter()) {
                            debug_assert!(
                                (0.0..9_007_199_254_740_992.0).contains(&v),
                                "exactness broken"
                            );
                            let contrib = q.reduce_u128((v as u128) << shift);
                            *o = q.add(*o, contrib);
                        }
                    }
                }
            }
        });
    }

    fn name(&self) -> &'static str {
        "tcu-fp64"
    }
}

/// Fragment-tiled plain f64 GEMM of one plane pair over the K slice
/// `[k0, k0+kw)`, written into the caller-owned scratch `out`. Every
/// multiply goes through [`fragment::mma_fp64`].
#[allow(clippy::too_many_arguments)]
fn fragment_tiled_gemm_fp64(
    pa: &[f64],
    pb: &[f64],
    m: usize,
    k: usize,
    n: usize,
    k0: usize,
    kw: usize,
    out: &mut Vec<f64>,
) {
    let fm = FP64_FRAGMENT.m;
    let fn_ = FP64_FRAGMENT.n;
    let fk = FP64_FRAGMENT.k;
    out.clear();
    out.resize(m * n, 0.0);
    let mut fa = [0.0f64; 32];
    let mut fb = [0.0f64; 32];
    let mut fc = [0.0f64; 64];
    for i0 in (0..m).step_by(fm) {
        for j0 in (0..n).step_by(fn_) {
            fc.fill(0.0);
            for t0 in (k0..k0 + kw).step_by(fk) {
                // Load (and zero-pad) the A and B fragments.
                fa.fill(0.0);
                fb.fill(0.0);
                for i in 0..fm.min(m - i0) {
                    for t in 0..fk.min(k0 + kw - t0) {
                        fa[i * fk + t] = pa[(i0 + i) * k + (t0 + t)];
                    }
                }
                for t in 0..fk.min(k0 + kw - t0) {
                    for j in 0..fn_.min(n - j0) {
                        fb[t * fn_ + j] = pb[(t0 + t) * n + (j0 + j)];
                    }
                }
                fragment::mma_fp64(&fa, &fb, &mut fc);
            }
            for i in 0..fm.min(m - i0) {
                for j in 0..fn_.min(n - j0) {
                    out[(i0 + i) * n + (j0 + j)] = fc[i * fn_ + j];
                }
            }
        }
    }
}

/// TensorFHE's INT8 tensor-core GEMM.
#[derive(Debug, Clone)]
pub struct Int8TcuGemm {
    scheme: Int8SplitScheme,
    shape: FragmentShape,
}

impl Int8TcuGemm {
    /// Engine with byte planes for `word_size` and the default `16×16×16`
    /// fragment.
    pub fn for_word_size(word_size: u32) -> Self {
        Self {
            scheme: Int8SplitScheme::for_word_size(word_size),
            shape: INT8_FRAGMENTS[0],
        }
    }

    /// Chooses a different INT8 fragment shape (e.g. `32×8×16` which the
    /// paper identifies as optimal for BConv).
    ///
    /// # Panics
    ///
    /// Panics if `shape` is not an A100 INT8 fragment shape.
    pub fn with_shape(mut self, shape: FragmentShape) -> Self {
        assert!(
            INT8_FRAGMENTS.contains(&shape),
            "unsupported INT8 fragment {shape}"
        );
        self.shape = shape;
        self
    }

    /// The active splitting scheme.
    pub fn scheme(&self) -> &Int8SplitScheme {
        &self.scheme
    }
}

impl GemmEngine for Int8TcuGemm {
    fn gemm(
        &self,
        q: &Modulus,
        a: &[u64],
        b: &[u64],
        m: usize,
        k: usize,
        n: usize,
        out: &mut [u64],
    ) {
        check_dims(a, b, out, m, k, n);
        debug_assert!(q.bits() <= 8 * self.scheme.planes() as u32);
        out.fill(0);
        let a_planes = self.scheme.split_a(a);
        let b_planes = self.scheme.split_b(b);
        INT8_TILE.with(|cell| {
            let mut tile = cell.borrow_mut();
            for (off_a, pa) in &a_planes {
                for (off_b, pb) in &b_planes {
                    let shift = off_a + off_b;
                    fragment_tiled_gemm_int8(self.shape, pa, pb, m, k, n, &mut tile);
                    neo_trace::add(Counter::MergeOps, (m * n) as u64);
                    for (o, &v) in out.iter_mut().zip(tile.iter()) {
                        let contrib = q.reduce_u128((v as u128) << shift);
                        *o = q.add(*o, contrib);
                    }
                }
            }
        });
    }

    fn name(&self) -> &'static str {
        "tcu-int8"
    }
}

fn fragment_tiled_gemm_int8(
    shape: FragmentShape,
    pa: &[u8],
    pb: &[u8],
    m: usize,
    k: usize,
    n: usize,
    out: &mut Vec<i64>,
) {
    let (fm, fn_, fk) = (shape.m, shape.n, shape.k);
    out.clear();
    out.resize(m * n, 0);
    let mut fa = vec![0u8; fm * fk];
    let mut fb = vec![0u8; fk * fn_];
    let mut fc = vec![0i32; fm * fn_];
    for i0 in (0..m).step_by(fm) {
        for j0 in (0..n).step_by(fn_) {
            fc.fill(0);
            for t0 in (0..k).step_by(fk) {
                fa.fill(0);
                fb.fill(0);
                for i in 0..fm.min(m - i0) {
                    for t in 0..fk.min(k - t0) {
                        fa[i * fk + t] = pa[(i0 + i) * k + (t0 + t)];
                    }
                }
                for t in 0..fk.min(k - t0) {
                    for j in 0..fn_.min(n - j0) {
                        fb[t * fn_ + j] = pb[(t0 + t) * n + (j0 + j)];
                    }
                }
                fragment::mma_int8(shape, &fa, &fb, &mut fc);
            }
            for i in 0..fm.min(m - i0) {
                for j in 0..fn_.min(n - j0) {
                    out[(i0 + i) * n + (j0 + j)] = fc[i * fn_ + j] as i64;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use neo_math::primes;
    use rand::{Rng, SeedableRng};

    fn modulus(bits: u32) -> Modulus {
        Modulus::new(primes::ntt_primes(bits, 1 << 10, 1).unwrap()[0]).unwrap()
    }

    fn random_mat(rng: &mut impl Rng, q: &Modulus, len: usize) -> Vec<u64> {
        (0..len).map(|_| rng.gen_range(0..q.value())).collect()
    }

    fn compare_engines(bits: u32, m: usize, k: usize, n: usize, seed: u64) {
        let q = modulus(bits);
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let a = random_mat(&mut rng, &q, m * k);
        let b = random_mat(&mut rng, &q, k * n);
        let mut c_ref = vec![0u64; m * n];
        let mut c_fp64 = vec![0u64; m * n];
        let mut c_int8 = vec![0u64; m * n];
        ScalarGemm.gemm(&q, &a, &b, m, k, n, &mut c_ref);
        Fp64TcuGemm::for_word_size(if bits <= 36 { 36 } else { 48 }).gemm(
            &q,
            &a,
            &b,
            m,
            k,
            n,
            &mut c_fp64,
        );
        Int8TcuGemm::for_word_size(if bits <= 36 { 36 } else { 48 }).gemm(
            &q,
            &a,
            &b,
            m,
            k,
            n,
            &mut c_int8,
        );
        assert_eq!(
            c_ref, c_fp64,
            "fp64 path diverged ({bits} bits, {m}x{k}x{n})"
        );
        assert_eq!(
            c_ref, c_int8,
            "int8 path diverged ({bits} bits, {m}x{k}x{n})"
        );
    }

    #[test]
    fn engines_agree_fragment_sized() {
        compare_engines(36, 8, 4, 8, 1);
        compare_engines(36, 16, 16, 16, 2);
    }

    #[test]
    fn engines_agree_odd_shapes() {
        compare_engines(36, 5, 3, 7, 3); // heavy padding
        compare_engines(36, 9, 16, 5, 4);
        compare_engines(36, 33, 9, 17, 5);
    }

    #[test]
    fn engines_agree_48_bit() {
        compare_engines(48, 16, 16, 16, 6);
        compare_engines(48, 12, 9, 8, 7);
    }

    #[test]
    fn engines_agree_long_k() {
        // K > 16 exercises the chunked accumulation path.
        compare_engines(36, 8, 40, 8, 8);
        compare_engines(48, 8, 33, 8, 9);
    }

    #[test]
    fn names() {
        assert_eq!(ScalarGemm.name(), "scalar");
        assert_eq!(Fp64TcuGemm::for_word_size(36).name(), "tcu-fp64");
        assert_eq!(Int8TcuGemm::for_word_size(36).name(), "tcu-int8");
        assert_eq!(BackendGemm::new(BackendKind::Portable).name(), "portable");
        assert_eq!(BackendGemm::new(BackendKind::Simd).name(), "simd");
        assert_eq!(BackendGemm::auto().kind(), BackendKind::detect());
    }

    #[test]
    fn backend_gemm_is_bit_identical_across_kinds() {
        // Wide modulus + long K forces mid-row folds, the place where a
        // backend with a different fold schedule would diverge.
        let q = Modulus::new(primes::ntt_primes(61, 1 << 10, 1).unwrap()[0]).unwrap();
        let mut rng = rand::rngs::StdRng::seed_from_u64(21);
        let (m, k, n) = (4usize, 600usize, 19usize);
        let a = random_mat(&mut rng, &q, m * k);
        let b = random_mat(&mut rng, &q, k * n);
        let mut scalar = vec![0u64; m * n];
        let mut portable = vec![0u64; m * n];
        let mut simd = vec![0u64; m * n];
        ScalarGemm.gemm(&q, &a, &b, m, k, n, &mut scalar);
        BackendGemm::new(BackendKind::Portable).gemm(&q, &a, &b, m, k, n, &mut portable);
        BackendGemm::new(BackendKind::Simd).gemm(&q, &a, &b, m, k, n, &mut simd);
        assert_eq!(scalar, portable);
        assert_eq!(scalar, simd);
    }

    #[test]
    fn blocked_scalar_matches_reference_on_wide_modulus() {
        // A 61-bit prime keeps the accumulation span short (~hundreds of
        // products), so K = 600 forces several mid-row folds.
        let q = Modulus::new(primes::ntt_primes(61, 1 << 10, 1).unwrap()[0]).unwrap();
        let mut rng = rand::rngs::StdRng::seed_from_u64(11);
        let (m, k, n) = (3usize, 600usize, 5usize);
        let a = random_mat(&mut rng, &q, m * k);
        let b = random_mat(&mut rng, &q, k * n);
        let mut blocked = vec![0u64; m * n];
        let mut naive = vec![0u64; m * n];
        ScalarGemm.gemm(&q, &a, &b, m, k, n, &mut blocked);
        reference_gemm(&q, &a, &b, m, k, n, &mut naive);
        assert_eq!(blocked, naive);
    }
}

#[cfg(test)]
mod blocked_property_tests {
    use super::*;
    use neo_math::primes;
    use proptest::prelude::*;
    use rand::{Rng, SeedableRng};

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// The deferred-reduction i-k-j kernel is bit-identical to the
        /// fully-reduced oracle across shapes and prime widths.
        #[test]
        fn blocked_matches_reference(
            seed in any::<u64>(),
            bits in 30u32..=61,
            m in 1usize..12,
            k in 1usize..40,
            n in 1usize..12,
        ) {
            let q = Modulus::new(primes::ntt_primes(bits, 1 << 10, 1).unwrap()[0]).unwrap();
            let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
            let a: Vec<u64> = (0..m * k).map(|_| rng.gen_range(0..q.value())).collect();
            let b: Vec<u64> = (0..k * n).map(|_| rng.gen_range(0..q.value())).collect();
            let mut blocked = vec![0u64; m * n];
            let mut naive = vec![0u64; m * n];
            ScalarGemm.gemm(&q, &a, &b, m, k, n, &mut blocked);
            reference_gemm(&q, &a, &b, m, k, n, &mut naive);
            prop_assert_eq!(blocked, naive);
        }
    }
}

#[cfg(test)]
mod shape_tests {
    use super::*;
    use neo_math::primes;
    use rand::{Rng, SeedableRng};

    #[test]
    fn int8_alternate_fragment_shapes_agree() {
        let q = Modulus::new(primes::ntt_primes(36, 1 << 10, 1).unwrap()[0]).unwrap();
        let mut rng = rand::rngs::StdRng::seed_from_u64(99);
        let (m, k, n) = (40usize, 12usize, 20usize);
        let a: Vec<u64> = (0..m * k).map(|_| rng.gen_range(0..q.value())).collect();
        let b: Vec<u64> = (0..k * n).map(|_| rng.gen_range(0..q.value())).collect();
        let mut want = vec![0u64; m * n];
        ScalarGemm.gemm(&q, &a, &b, m, k, n, &mut want);
        for shape in crate::INT8_FRAGMENTS {
            let mut got = vec![0u64; m * n];
            Int8TcuGemm::for_word_size(36)
                .with_shape(shape)
                .gemm(&q, &a, &b, m, k, n, &mut got);
            assert_eq!(got, want, "shape {shape}");
        }
    }

    #[test]
    #[should_panic(expected = "unsupported INT8 fragment")]
    fn with_shape_rejects_fp64_shape() {
        let _ = Int8TcuGemm::for_word_size(36).with_shape(crate::FP64_FRAGMENT);
    }

    #[test]
    fn fp64_custom_scheme_roundtrip() {
        // An unusual but exact custom scheme: 18-bit planes both sides.
        let scheme = crate::Fp64SplitScheme::new(36, 36, vec![18, 18], vec![18, 18], 16);
        assert_eq!(scheme.partial_products(), 4);
        let q = Modulus::new(primes::ntt_primes(36, 1 << 10, 1).unwrap()[0]).unwrap();
        let mut rng = rand::rngs::StdRng::seed_from_u64(100);
        let a: Vec<u64> = (0..8 * 8).map(|_| rng.gen_range(0..q.value())).collect();
        let b: Vec<u64> = (0..8 * 8).map(|_| rng.gen_range(0..q.value())).collect();
        let mut want = vec![0u64; 64];
        let mut got = vec![0u64; 64];
        ScalarGemm.gemm(&q, &a, &b, 8, 8, 8, &mut want);
        Fp64TcuGemm::new(scheme).gemm(&q, &a, &b, 8, 8, 8, &mut got);
        assert_eq!(got, want);
    }
}
