//! Raw tensor-core fragment MMA semantics.
//!
//! A fragment MMA computes `D = A × B + C` for fixed operand shapes
//! `M×K`, `K×N`, `M×N`. This module emulates the two A100 paths the paper
//! uses — FP64 `8×8×4` and INT8 `{16×16×16, 32×8×16, 8×32×16}` — with the
//! exact accumulation semantics of the hardware (f64 FMA, i32 integer
//! accumulate), so higher layers can assert bit-exactness of the emulated
//! modular GEMMs.

/// A supported fragment shape `M × N × K`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct FragmentShape {
    /// Rows of A / rows of the output tile.
    pub m: usize,
    /// Columns of B / columns of the output tile.
    pub n: usize,
    /// Inner (reduction) dimension.
    pub k: usize,
}

impl FragmentShape {
    /// Output elements per fragment MMA.
    pub fn output_elems(&self) -> usize {
        self.m * self.n
    }

    /// Multiply-accumulate operations per fragment MMA.
    pub fn macs(&self) -> usize {
        self.m * self.n * self.k
    }
}

impl std::fmt::Display for FragmentShape {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}x{}x{}", self.m, self.n, self.k)
    }
}

/// The single FP64 fragment shape on A100: `8×8×4`.
pub const FP64_FRAGMENT: FragmentShape = FragmentShape { m: 8, n: 8, k: 4 };

/// The INT8 fragment shapes on A100.
pub const INT8_FRAGMENTS: [FragmentShape; 3] = [
    FragmentShape {
        m: 16,
        n: 16,
        k: 16,
    },
    FragmentShape { m: 32, n: 8, k: 16 },
    FragmentShape { m: 8, n: 32, k: 16 },
];

/// One FP64 fragment MMA: `d = a(8×4) × b(4×8) + c(8×8)`, row-major slices.
///
/// Exactness: the hardware performs true IEEE-754 double FMAs. When all
/// products and partial sums are integers below `2^53`, the result is the
/// exact integer result — this is the property Neo's splitting scheme is
/// engineered around.
///
/// # Panics
///
/// Panics if the slices do not have lengths 32/32/64.
pub fn mma_fp64(a: &[f64], b: &[f64], c: &mut [f64]) {
    assert_eq!(a.len(), 8 * 4);
    assert_eq!(b.len(), 4 * 8);
    assert_eq!(c.len(), 8 * 8);
    neo_trace::add(neo_trace::Counter::TcuFp64Macs, FP64_FRAGMENT.macs() as u64);
    for i in 0..8 {
        for j in 0..8 {
            let mut acc = c[i * 8 + j];
            for t in 0..4 {
                acc += a[i * 4 + t] * b[t * 8 + j];
            }
            c[i * 8 + j] = acc;
        }
    }
    if neo_fault::armed() {
        neo_fault::corrupt_f64(neo_fault::FaultSite::TcuFragment, c);
    }
}

/// One INT8 fragment MMA of the given shape: `d = a × b + c` with unsigned
/// 8-bit operands and 32-bit accumulation (the `u8` wmma path TensorFHE
/// uses for byte planes).
///
/// # Panics
///
/// Panics if `shape` is not one of [`INT8_FRAGMENTS`] or slice lengths
/// disagree with the shape.
pub fn mma_int8(shape: FragmentShape, a: &[u8], b: &[u8], c: &mut [i32]) {
    assert!(
        INT8_FRAGMENTS.contains(&shape),
        "unsupported INT8 fragment {shape}"
    );
    assert_eq!(a.len(), shape.m * shape.k);
    assert_eq!(b.len(), shape.k * shape.n);
    assert_eq!(c.len(), shape.m * shape.n);
    neo_trace::add(neo_trace::Counter::TcuInt8Macs, shape.macs() as u64);
    for i in 0..shape.m {
        for j in 0..shape.n {
            let mut acc = c[i * shape.n + j];
            for t in 0..shape.k {
                acc += a[i * shape.k + t] as i32 * b[t * shape.n + j] as i32;
            }
            c[i * shape.n + j] = acc;
        }
    }
    if neo_fault::armed() {
        neo_fault::corrupt_i32(neo_fault::FaultSite::TcuFragment, c);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fp64_identity() {
        // A = I (8x4 slice of identity), B arbitrary: D = B rows.
        let mut a = vec![0.0; 32];
        for i in 0..4 {
            a[i * 4 + i] = 1.0;
        }
        let b: Vec<f64> = (0..32).map(|x| x as f64).collect();
        let mut c = vec![0.0; 64];
        mma_fp64(&a, &b, &mut c);
        for i in 0..4 {
            for j in 0..8 {
                assert_eq!(c[i * 8 + j], b[i * 8 + j]);
            }
        }
        // Rows 4..8 of A are zero => zero outputs.
        for v in &c[32..] {
            assert_eq!(*v, 0.0);
        }
    }

    #[test]
    fn fp64_accumulates_into_c() {
        let a = vec![1.0; 32];
        let b = vec![1.0; 32];
        let mut c = vec![10.0; 64];
        mma_fp64(&a, &b, &mut c);
        for v in &c {
            assert_eq!(*v, 14.0); // 10 + K(=4) * 1
        }
    }

    #[test]
    fn fp64_exact_at_52_bits() {
        // max magnitude per the paper: 2^36 * 2^12 * K(4 here) stays exact.
        let a = vec![(1u64 << 36) as f64; 32];
        let b = vec![((1u64 << 12) - 1) as f64; 32];
        let mut c = vec![0.0; 64];
        mma_fp64(&a, &b, &mut c);
        let expect = 4u128 * (1u128 << 36) * ((1u128 << 12) - 1);
        for v in &c {
            assert_eq!(*v as u128, expect);
        }
    }

    #[test]
    fn int8_all_shapes() {
        for shape in INT8_FRAGMENTS {
            let a = vec![3u8; shape.m * shape.k];
            let b = vec![5u8; shape.k * shape.n];
            let mut c = vec![7i32; shape.m * shape.n];
            mma_int8(shape, &a, &b, &mut c);
            for v in &c {
                assert_eq!(*v, 7 + shape.k as i32 * 15);
            }
        }
    }

    #[test]
    #[should_panic(expected = "unsupported INT8 fragment")]
    fn int8_rejects_fp64_shape() {
        let mut c = vec![0i32; 64];
        mma_int8(FP64_FRAGMENT, &[0; 32], &[0; 32], &mut c);
    }

    #[test]
    fn shape_metrics() {
        assert_eq!(FP64_FRAGMENT.macs(), 256);
        assert_eq!(INT8_FRAGMENTS[0].macs(), 4096);
        assert_eq!(FP64_FRAGMENT.output_elems(), 64);
    }
}
