//! Static cost accounting for TCU-emulated GEMMs.
//!
//! These pure functions compute, from matrix dimensions and a splitting
//! scheme, the quantities the paper reasons about: Booth complexity
//! (number of partial fragment GEMMs), fragment counts, and the *valid
//! proportion* of fragment compute that lands on real (non-padding) data —
//! the metric of Fig. 12 that drives Neo's IP mapping decision
//! (TCU when > 80%, CUDA cores otherwise).

use crate::fragment::FragmentShape;
use crate::split::{Fp64SplitScheme, Int8SplitScheme};

/// Dimensions of one modular GEMM, `C(m×n) = A(m×k) × B(k×n)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GemmDims {
    /// Rows of A.
    pub m: usize,
    /// Inner dimension.
    pub k: usize,
    /// Columns of B.
    pub n: usize,
}

impl GemmDims {
    /// Convenience constructor.
    pub fn new(m: usize, k: usize, n: usize) -> Self {
        Self { m, k, n }
    }

    /// Multiply-accumulate count of the plain (unsplit) modular GEMM.
    pub fn macs(&self) -> u64 {
        (self.m * self.k * self.n) as u64
    }

    /// Fragment tiles needed for one plane-pair GEMM under `shape`
    /// (with zero padding of every partial dimension).
    pub fn fragments(&self, shape: FragmentShape) -> u64 {
        (self.m.div_ceil(shape.m) * self.n.div_ceil(shape.n) * self.k.div_ceil(shape.k)) as u64
    }

    /// Padded MAC count under `shape` for one plane pair.
    pub fn padded_macs(&self, shape: FragmentShape) -> u64 {
        self.fragments(shape) * shape.macs() as u64
    }
}

/// The paper's FP64 Booth complexity: partial fragment GEMMs per modular
/// GEMM (3 for 36-bit words, 2×2 = 4 for 48-bit words).
pub fn booth_complexity_fp64(word_size: u32) -> u64 {
    Fp64SplitScheme::for_word_size(word_size).partial_products() as u64
}

/// The INT8 Booth complexity: `⌈w/8⌉²` (25 for 36-bit, 36 for 48-bit).
pub fn booth_complexity_int8(word_size: u32) -> u64 {
    Int8SplitScheme::for_word_size(word_size).partial_products() as u64
}

/// Fraction of fragment MACs that act on real data rather than padding
/// (Fig. 12). `1.0` when every dimension divides the fragment shape.
pub fn valid_proportion(dims: GemmDims, shape: FragmentShape) -> f64 {
    dims.macs() as f64 / dims.padded_macs(shape) as f64
}

/// Total fragment MMA count for a full split GEMM on the FP64 path.
pub fn total_fragments_fp64(dims: GemmDims, word_size: u32) -> u64 {
    booth_complexity_fp64(word_size) * dims.fragments(crate::FP64_FRAGMENT)
}

/// Total fragment MMA count for a full split GEMM on the INT8 path with
/// the given fragment shape.
pub fn total_fragments_int8(dims: GemmDims, word_size: u32, shape: FragmentShape) -> u64 {
    booth_complexity_int8(word_size) * dims.fragments(shape)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{FP64_FRAGMENT, INT8_FRAGMENTS};

    #[test]
    fn booth_matches_paper() {
        assert_eq!(booth_complexity_fp64(36), 3);
        assert_eq!(booth_complexity_fp64(48), 4);
        assert_eq!(booth_complexity_int8(36), 25);
        assert_eq!(booth_complexity_int8(48), 36);
    }

    #[test]
    fn ntt_shape_is_fully_valid_on_fp64() {
        // Radix-16 NTT: (BS * N/16) x 16 x 16 — all dims divide 8/8/4.
        let dims = GemmDims::new(128 * 4096, 16, 16);
        assert_eq!(valid_proportion(dims, FP64_FRAGMENT), 1.0);
    }

    #[test]
    fn bconv_int8_padding_matches_paper() {
        // Paper Fig. 11: BConv with alpha=4 (K), alpha'=8 (N) on INT8
        // 32x8x16 has only 25% valid computation.
        let dims = GemmDims::new(32, 4, 8);
        let prop = valid_proportion(dims, INT8_FRAGMENTS[1]); // 32x8x16
        assert!((prop - 0.25).abs() < 1e-12, "got {prop}");
        // And 100% on FP64 (8|32, 8|8, 4|4).
        assert_eq!(valid_proportion(dims, FP64_FRAGMENT), 1.0);
    }

    #[test]
    fn ip_valid_proportion_varies_with_beta() {
        // IP: N = beta~, K = beta. At beta=9, beta~=8 (Set-C, l=35):
        let full = valid_proportion(GemmDims::new(128, 9, 8), FP64_FRAGMENT);
        // K=9 pads to 12 -> 75%.
        assert!((full - 0.75).abs() < 1e-12, "got {full}");
        // Small beta pads much worse.
        let small = valid_proportion(GemmDims::new(128, 2, 2), FP64_FRAGMENT);
        assert!(small < 0.25);
    }

    #[test]
    fn fragment_counts() {
        let dims = GemmDims::new(16, 16, 16);
        assert_eq!(dims.fragments(FP64_FRAGMENT), 2 * 2 * 4);
        assert_eq!(total_fragments_fp64(dims, 36), 3 * 16);
        assert_eq!(dims.fragments(INT8_FRAGMENTS[0]), 1);
        assert_eq!(total_fragments_int8(dims, 36, INT8_FRAGMENTS[0]), 25);
    }
}
