//! Algorithm-based fault tolerance (ABFT) for the modular GEMMs.
//!
//! Classic Huang–Abraham row/column checksums, carried out modulo `q`:
//! for `C = A·B (mod q)` the column-checksum identity
//!
//! ```text
//! (1⃗ᵀ·A)·B ≡ 1⃗ᵀ·C        (one extra row:    k + k·n + m·n work)
//! A·(B·1⃗)  ≡ C·1⃗         (one extra column: m·k + k + m·n work)
//! ```
//!
//! must hold. A single bit flip in any accumulator (or any output limb)
//! shifts exactly one `C[i][j]` by `±2^b`, which changes both its row and
//! column sums by `±2^b mod q ≠ 0` (q is an odd prime), so the check
//! *always* catches a single flip — and almost always catches multi-flip
//! bursts. The verify costs `O(m·k + k·n + m·n)` against the GEMM's
//! `O(m·k·n)`, i.e. a `~3/k` relative overhead, tallied separately under
//! [`neo_trace::Counter::AbftChecks`]/[`AbftMacs`](neo_trace::Counter::AbftMacs)
//! so the cost model can price verification explicitly.
//!
//! [`verify_gemm`] checks an already-computed product; [`CheckedGemm`]
//! wraps any [`GemmEngine`] so the check runs after every merge+reduce.

use crate::gemm::GemmEngine;
use neo_error::NeoError;
use neo_math::Modulus;
use neo_trace::Counter;

/// Verifies `c == a·b (mod q)` via modular row/column checksums.
///
/// `a` is `m×k`, `b` is `k×n`, `c` is `m×n`, all row-major. Entries of
/// `a`/`b` must be reduced; entries of `c` may be arbitrary u64 (a
/// corrupted, unreduced limb still trips the check).
///
/// # Errors
///
/// [`NeoError::FaultDetected`] with site `"tcu_gemm"` if either checksum
/// identity fails.
///
/// # Panics
///
/// Panics if slice lengths disagree with `m`/`k`/`n`.
pub fn verify_gemm(
    q: &Modulus,
    a: &[u64],
    b: &[u64],
    m: usize,
    k: usize,
    n: usize,
    c: &[u64],
) -> Result<(), NeoError> {
    assert_eq!(a.len(), m * k, "A must be m x k");
    assert_eq!(b.len(), k * n, "B must be k x n");
    assert_eq!(c.len(), m * n, "C must be m x n");
    neo_trace::add(Counter::AbftChecks, 1);
    crate::metrics::ABFT_CHECKS.inc();
    neo_trace::add(
        Counter::AbftMacs,
        (2 * m * k + 2 * k * n + 2 * m * n) as u64,
    );
    neo_trace::add(Counter::BytesRead, ((m * k + k * n + m * n) * 8) as u64);

    // Column checksum: (1ᵀ·A)·B vs 1ᵀ·C, one column j at a time.
    let mut colsum_a = vec![0u64; k];
    for (t, s) in colsum_a.iter_mut().enumerate() {
        let mut acc = 0u128;
        for i in 0..m {
            acc += u128::from(a[i * k + t]);
        }
        *s = q.reduce_u128(acc);
    }
    for j in 0..n {
        let mut expect = 0u128;
        for (t, &s) in colsum_a.iter().enumerate() {
            expect += u128::from(s) * u128::from(b[t * n + j]);
        }
        let mut got = 0u128;
        for i in 0..m {
            got += u128::from(c[i * n + j]);
        }
        let (expect, got) = (q.reduce_u128(expect), q.reduce_u128(got));
        if expect != got {
            crate::metrics::ABFT_DETECTIONS.inc();
            return Err(NeoError::fault_detected(
                "tcu_gemm",
                format!(
                    "column checksum mismatch at j={j} ({got} != {expect}) \
                     for {m}x{k}x{n} GEMM mod {}",
                    q.value()
                ),
            ));
        }
    }

    // Row checksum: A·(B·1⃗) vs C·1⃗, one row i at a time.
    let mut rowsum_b = vec![0u64; k];
    for (t, s) in rowsum_b.iter_mut().enumerate() {
        let mut acc = 0u128;
        for j in 0..n {
            acc += u128::from(b[t * n + j]);
        }
        *s = q.reduce_u128(acc);
    }
    for i in 0..m {
        let mut expect = 0u128;
        for (t, &s) in rowsum_b.iter().enumerate() {
            expect += u128::from(a[i * k + t]) * u128::from(s);
        }
        let mut got = 0u128;
        for j in 0..n {
            got += u128::from(c[i * n + j]);
        }
        let (expect, got) = (q.reduce_u128(expect), q.reduce_u128(got));
        if expect != got {
            crate::metrics::ABFT_DETECTIONS.inc();
            return Err(NeoError::fault_detected(
                "tcu_gemm",
                format!(
                    "row checksum mismatch at i={i} ({got} != {expect}) \
                     for {m}x{k}x{n} GEMM mod {}",
                    q.value()
                ),
            ));
        }
    }
    Ok(())
}

/// A [`GemmEngine`] wrapper that runs the Huang–Abraham verify after every
/// product, turning silent accumulator corruption into a typed
/// [`NeoError::FaultDetected`].
#[derive(Debug, Clone, Copy, Default)]
pub struct CheckedGemm<E> {
    inner: E,
}

impl<E: GemmEngine> CheckedGemm<E> {
    /// Wraps `inner`.
    pub fn new(inner: E) -> Self {
        Self { inner }
    }

    /// The wrapped engine.
    pub fn inner(&self) -> &E {
        &self.inner
    }

    /// Computes `out = a·b (mod q)` with the inner engine, then verifies
    /// the result. On detection, `out` contents are unspecified (the
    /// caller must discard or retry).
    ///
    /// # Errors
    ///
    /// [`NeoError::FaultDetected`] if the checksum verify fails.
    #[allow(clippy::too_many_arguments)]
    pub fn gemm_verified(
        &self,
        q: &Modulus,
        a: &[u64],
        b: &[u64],
        m: usize,
        k: usize,
        n: usize,
        out: &mut [u64],
    ) -> Result<(), NeoError> {
        self.inner.gemm(q, a, b, m, k, n, out);
        verify_gemm(q, a, b, m, k, n, out)
    }

    /// The inner engine's name, suffixed to mark verification.
    pub fn name(&self) -> String {
        format!("{}+abft", self.inner.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gemm::ScalarGemm;
    use neo_math::primes;
    use proptest::prelude::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn test_modulus(bits: u32) -> Modulus {
        Modulus::new(primes::ntt_primes(bits, 8, 1).unwrap()[0]).unwrap()
    }

    fn random_gemm(
        seed: u64,
        q: &Modulus,
        m: usize,
        k: usize,
        n: usize,
    ) -> (Vec<u64>, Vec<u64>, Vec<u64>) {
        let mut rng = StdRng::seed_from_u64(seed);
        let a: Vec<u64> = (0..m * k).map(|_| rng.gen_range(0..q.value())).collect();
        let b: Vec<u64> = (0..k * n).map(|_| rng.gen_range(0..q.value())).collect();
        let mut c = vec![0u64; m * n];
        ScalarGemm.gemm(q, &a, &b, m, k, n, &mut c);
        (a, b, c)
    }

    #[test]
    fn clean_product_verifies_and_tallies() {
        let q = test_modulus(36);
        let (a, b, c) = random_gemm(1, &q, 8, 4, 8);
        let (r, w) = neo_trace::record(|| verify_gemm(&q, &a, &b, 8, 4, 8, &c));
        r.unwrap();
        assert_eq!(w.get(Counter::AbftChecks), 1);
        assert!(w.get(Counter::AbftMacs) > 0);
    }

    #[test]
    fn checked_gemm_detects_injected_fragment_fault() {
        let q = test_modulus(36);
        let (a, b, _) = random_gemm(2, &q, 8, 4, 8);
        let mut out = vec![0u64; 64];
        let checked = CheckedGemm::new(crate::gemm::Fp64TcuGemm::for_word_size(36));
        checked
            .gemm_verified(&q, &a, &b, 8, 4, 8, &mut out)
            .unwrap();

        let plan = std::sync::Arc::new(neo_fault::FaultPlan::new(7).with_site(
            neo_fault::FaultSite::TcuFragment,
            neo_fault::FaultSpec::once(),
        ));
        let scope = neo_fault::FaultScope::install(plan.clone());
        let err = checked
            .gemm_verified(&q, &a, &b, 8, 4, 8, &mut out)
            .unwrap_err();
        drop(scope);
        assert_eq!(plan.injected(neo_fault::FaultSite::TcuFragment), 1);
        assert!(matches!(
            err,
            NeoError::FaultDetected {
                site: "tcu_gemm",
                ..
            }
        ));
    }

    #[test]
    fn abft_detection_is_backend_independent() {
        use neo_math::BackendKind;
        let q = test_modulus(48);
        let (a, b, _) = random_gemm(3, &q, 9, 33, 7);
        for kind in [BackendKind::Portable, BackendKind::Simd] {
            let checked = CheckedGemm::new(crate::gemm::BackendGemm::new(kind));
            assert_eq!(checked.name(), format!("{}+abft", kind.name()));
            let mut out = vec![0u64; 63];
            checked
                .gemm_verified(&q, &a, &b, 9, 33, 7, &mut out)
                .unwrap_or_else(|e| panic!("clean {kind} product rejected: {e}"));
            // A single flipped accumulator bit must trip the checksum no
            // matter which backend produced the product.
            out[17] ^= 1 << 29;
            let err = verify_gemm(&q, &a, &b, 9, 33, 7, &out).unwrap_err();
            assert!(matches!(
                err,
                NeoError::FaultDetected {
                    site: "tcu_gemm",
                    ..
                }
            ));
        }
    }

    proptest! {
        /// Clean GEMMs always pass, and any single bit flip in any output
        /// limb is always detected, across random (q, m, n, k).
        #[test]
        fn checksum_accepts_clean_and_detects_any_single_flip(
            seed in 0u64..1024,
            bits in 30u32..50,
            m in 1usize..12,
            k in 1usize..12,
            n in 1usize..12,
            flip_idx in 0usize..1024,
            flip_bit in 0u64..64,
        ) {
            let q = test_modulus(bits);
            let (a, b, mut c) = random_gemm(seed, &q, m, k, n);
            prop_assert!(verify_gemm(&q, &a, &b, m, k, n, &c).is_ok());
            c[flip_idx % (m * n)] ^= 1 << flip_bit;
            prop_assert!(verify_gemm(&q, &a, &b, m, k, n, &c).is_err());
        }
    }
}
