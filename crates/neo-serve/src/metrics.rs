//! `neo-metrics` integration for the serving layer.
//!
//! * `serve_requests_total` / `serve_shed_total{reason}` — admission
//!   outcomes (`reason` ∈ `queue_depth`, `retry_budget`,
//!   `tenant_inflight`, `channel`);
//! * `serve_batches_total` / `serve_coalesced_requests_total` — the
//!   ratio is the coalescing factor;
//! * `serve_request_latency_ns` / `serve_queue_wait_ns` — per-request
//!   end-to-end and queue-only latency histograms;
//! * `serve_batch_exec_ns` / `serve_batch_requests` /
//!   `serve_batch_est_makespan_us` — per-batch wall time, size, and the
//!   cost oracle's simulated makespan;
//! * `serve_plan_admissions_total` — batches whose stream choice was
//!   served from the shared plan cache instead of a fresh sim sweep;
//! * `serve_queue_depth` — pending requests (gauge).
//!
//! Everything follows the gate discipline: one relaxed load and no work
//! while [`neo_metrics::enabled`] is off.

use neo_metrics::{CounterHandle, GaugeHandle, Histogram};
use std::sync::{Arc, LazyLock};

/// Shed reasons, fixed so the counter family has a closed label set.
pub(crate) const SHED_REASONS: [&str; 4] =
    ["queue_depth", "retry_budget", "tenant_inflight", "channel"];

static REQUESTS: LazyLock<Arc<CounterHandle>> =
    LazyLock::new(|| neo_metrics::counter("serve_requests_total", &[]));
static SHED: LazyLock<[Arc<CounterHandle>; 4]> = LazyLock::new(|| {
    SHED_REASONS.map(|r| neo_metrics::counter("serve_shed_total", &[("reason", r)]))
});
static BATCHES: LazyLock<Arc<CounterHandle>> =
    LazyLock::new(|| neo_metrics::counter("serve_batches_total", &[]));
static COALESCED: LazyLock<Arc<CounterHandle>> =
    LazyLock::new(|| neo_metrics::counter("serve_coalesced_requests_total", &[]));
static LATENCY: LazyLock<Arc<Histogram>> =
    LazyLock::new(|| neo_metrics::histogram("serve_request_latency_ns", &[]));
static QUEUE_WAIT: LazyLock<Arc<Histogram>> =
    LazyLock::new(|| neo_metrics::histogram("serve_queue_wait_ns", &[]));
static BATCH_EXEC: LazyLock<Arc<Histogram>> =
    LazyLock::new(|| neo_metrics::histogram("serve_batch_exec_ns", &[]));
static BATCH_REQS: LazyLock<Arc<Histogram>> =
    LazyLock::new(|| neo_metrics::histogram("serve_batch_requests", &[]));
static BATCH_EST: LazyLock<Arc<Histogram>> =
    LazyLock::new(|| neo_metrics::histogram("serve_batch_est_makespan_us", &[]));
static QUEUE_DEPTH: LazyLock<Arc<GaugeHandle>> =
    LazyLock::new(|| neo_metrics::gauge("serve_queue_depth", &[]));
static PLAN_ADMISSIONS: LazyLock<Arc<CounterHandle>> =
    LazyLock::new(|| neo_metrics::counter("serve_plan_admissions_total", &[]));

/// One admitted request.
pub(crate) fn note_request() {
    if neo_metrics::enabled() {
        REQUESTS.inc();
    }
}

/// One shed request; `reason` must be in [`SHED_REASONS`].
pub(crate) fn note_shed(reason: &'static str) {
    if !neo_metrics::enabled() {
        return;
    }
    if let Some(i) = SHED_REASONS.iter().position(|r| *r == reason) {
        SHED[i].inc();
    }
}

/// One executed batch: size, wall time, and the oracle's estimate.
pub(crate) fn note_batch(requests: usize, exec_ns: u64, est_makespan_us: u64) {
    if !neo_metrics::enabled() {
        return;
    }
    BATCHES.inc();
    COALESCED.add(requests as u64);
    BATCH_REQS.record(requests as u64);
    BATCH_EXEC.record(exec_ns);
    BATCH_EST.record(est_makespan_us);
}

/// One completed request's latency split.
pub(crate) fn note_response(queue_ns: u64, total_ns: u64) {
    if !neo_metrics::enabled() {
        return;
    }
    QUEUE_WAIT.record(queue_ns);
    LATENCY.record(total_ns);
}

/// One batch admitted off the plan cache (no sim sweep paid).
pub(crate) fn note_plan_admission() {
    if neo_metrics::enabled() {
        PLAN_ADMISSIONS.inc();
    }
}

/// Current admission-queue depth.
pub(crate) fn set_queue_depth(depth: usize) {
    if neo_metrics::enabled() {
        QUEUE_DEPTH.set(depth as f64);
    }
}
