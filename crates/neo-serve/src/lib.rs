//! # neo-serve — multi-tenant serving over the Neo CKKS engine
//!
//! The serving layer the Neo paper's accelerator implies but never
//! spells out: many mutually distrusting tenants share one parameter
//! set's tables (and, on real hardware, one GPU), each with its own
//! keys, guardrail policy, and recovery budget.
//!
//! Four modules, four responsibilities:
//!
//! * [`tenant`] — [`TenantRegistry`] / [`TenantSession`]: per-tenant
//!   [`neo_ckks::FheEngine`]s sharing one `Arc<CkksContext>`
//!   (registering 10k tenants costs 10k key generations, not 10k
//!   parameter setups), plus inflight caps and the retry/fault budget.
//! * [`admission`] — [`AdmissionQueue`]: noise/level-aware priority
//!   ordering and batch coalescing, priced by the
//!   [`neo_sched`] discrete-event simulator — each candidate's kernel
//!   graph is appended to the forming batch and the merged graph's
//!   [`neo_sched::estimate_makespan_best`] verdict decides the cut-off
//!   and the stream count. With a shared `neo-plan` cache attached
//!   ([`AdmissionConfig::plan_store`]), repeat batch shapes reuse the
//!   cached stream choice instead of re-running the sweep.
//! * [`executor`] — bridges coalesced batches onto the engines:
//!   deterministic serial key warm-up, then bit-identical concurrent
//!   per-request execution.
//! * [`service`] — [`ServiceCore`], the single-threaded deterministic
//!   loop (benchmarks, tests), and [`NeoService`], the bounded-channel
//!   threaded front-end whose `submit` never blocks: overload is always
//!   answered immediately with [`neo_error::NeoError::Overloaded`].
//!
//! Observability rides the existing rails: `serve_*` histograms and
//! counters in [`neo_metrics`] (gate-disciplined — zero overhead while
//! disabled) and `serve_batch` / `serve_request` spans in [`neo_trace`].

#![cfg_attr(not(test), deny(clippy::unwrap_used))]
#![deny(missing_docs)]

pub mod admission;
pub mod executor;
mod metrics;
pub mod service;
pub mod tenant;

pub use admission::{
    price_request, pricing_level, AdmissionConfig, AdmissionQueue, CoalescedBatch, QueuedRequest,
};
pub use executor::{execute_coalesced, BatchStats, Response};
pub use service::{NeoService, ResponseHandle, ServeConfig, ServeStats, ServiceCore};
pub use tenant::{TenantConfig, TenantId, TenantRegistry, TenantSession};

#[cfg(test)]
mod tests {
    use super::*;
    use neo_ckks::{BatchOp, BatchProgram, CkksParams, Slot};
    use std::sync::Arc;

    fn square_plus_self() -> BatchProgram {
        let mut p = BatchProgram::new();
        let sq = p
            .try_push(BatchOp::HMult(Slot::Input(0), Slot::Input(0)))
            .expect("push");
        let rs = p.try_push(BatchOp::Rescale(sq)).expect("push");
        p.try_push(BatchOp::HAdd(rs, rs)).expect("push");
        p
    }

    #[test]
    fn core_round_trip_two_tenants() {
        let registry = Arc::new(TenantRegistry::new(CkksParams::test_tiny()).expect("params"));
        let a = registry.register_default(1, 101).expect("tenant 1");
        let b = registry.register_default(2, 202).expect("tenant 2");
        let mut core = ServiceCore::new(Arc::clone(&registry), ServeConfig::default());

        let level = a.engine().max_level();
        let ca = a.engine().encrypt_f64(&[3.0], level).expect("enc");
        let cb = b.engine().encrypt_f64(&[5.0], level).expect("enc");
        core.submit(1, square_plus_self(), vec![ca])
            .expect("submit");
        core.submit(2, square_plus_self(), vec![cb])
            .expect("submit");

        let responses = core.run_until_idle();
        assert_eq!(responses.len(), 2);
        for resp in &responses {
            let results = resp.outcome.as_ref().expect("executed");
            let last = results.last().expect("ops").as_ref().expect("ok");
            let session = registry.get(resp.tenant).expect("session");
            let got = session.engine().decrypt_f64(last).expect("dec")[0];
            let x = if resp.tenant == 1 { 3.0 } else { 5.0 };
            let want = 2.0 * x * x;
            assert!(
                (got - want).abs() < 0.05 * want.abs(),
                "tenant {} expected {want}, got {got}",
                resp.tenant
            );
        }
        let stats = core.stats();
        assert_eq!(stats.submitted, 2);
        assert_eq!(stats.completed, 2);
        assert_eq!(stats.batches, 1, "two requests coalesced into one batch");
        assert!((stats.coalescing_factor() - 2.0).abs() < f64::EPSILON);
    }

    #[test]
    fn threaded_service_answers_handles() {
        let registry = Arc::new(TenantRegistry::new(CkksParams::test_tiny()).expect("params"));
        let t = registry.register_default(1, 7).expect("tenant");
        let level = t.engine().max_level();
        let ct = t.engine().encrypt_f64(&[2.0], level).expect("enc");

        let svc = NeoService::spawn(Arc::clone(&registry), ServeConfig::default());
        let handle = svc.submit(1, square_plus_self(), vec![ct]).expect("submit");
        let resp = handle.wait().expect("response");
        let results = resp.outcome.expect("executed");
        let last = results.last().expect("ops").as_ref().expect("ok");
        let got = t.engine().decrypt_f64(last).expect("dec")[0];
        assert!((got - 8.0).abs() < 0.5, "2·2² = 8, got {got}");
        let stats = svc.shutdown();
        assert_eq!(stats.completed, 1);
    }

    #[test]
    fn unknown_tenant_is_invalid_params_not_shed() {
        let registry = Arc::new(TenantRegistry::new(CkksParams::test_tiny()).expect("params"));
        let mut core = ServiceCore::new(registry, ServeConfig::default());
        let err = core
            .submit(99, BatchProgram::new(), vec![])
            .expect_err("unknown tenant");
        assert_eq!(err.kind().name(), "invalid_params");
        assert_eq!(core.stats().shed_total(), 0);
    }
}
