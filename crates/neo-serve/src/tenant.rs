//! Per-tenant sessions and the registry that owns them.
//!
//! A [`TenantSession`] wraps one [`FheEngine`] — its own secret/public
//! keys, key chest, guardrail policy and recovery budget — while every
//! session built by one [`TenantRegistry`] shares a single
//! [`CkksContext`] `Arc` (prime chains, NTT plans, BConv tables), so
//! registering ten thousand tenants costs ten thousand key generations,
//! not ten thousand parameter setups.

use neo_ckks::{CkksContext, CkksParams, ExecPlan, FheEngine, NeoError, OpPolicy};
use parking_lot::RwLock;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;

/// Opaque tenant identifier, chosen by the caller at registration.
pub type TenantId = u64;

/// Per-tenant service agreement: engine policy plus the recovery budget
/// the admission layer enforces.
#[derive(Debug, Clone, Copy)]
pub struct TenantConfig {
    /// Guardrail policy installed on the tenant's engine (auto-rescale,
    /// level alignment, noise floor, warm-key requirement, verification).
    pub policy: OpPolicy,
    /// Tuned execution plan installed on the tenant's engine via
    /// [`FheEngine::with_plan`] at registration. The plan must have been
    /// tuned for this registry's backend — a mismatch fails registration
    /// with [`NeoError::ParameterMismatch`]. Produce one with the
    /// `neo-plan` autotuner; to pin a key-switching method, pin it in the
    /// plan ([`ExecPlan::pinned`] — the per-knob `method` override was
    /// removed in 0.4.0 after its one-release deprecation window).
    pub plan: Option<ExecPlan>,
    /// Per-request retry ceiling handed to
    /// [`neo_ckks::BatchProgram::execute_with_report`].
    pub max_retries: u32,
    /// Recovery budget: once a tenant's cumulative retries + recovered
    /// faults exceed this, further submissions are shed with
    /// [`NeoError::Overloaded`] (`what = "retry_budget"`) until
    /// [`TenantSession::reset_budget_window`] is called. A faulty tenant
    /// burning the executor on retries is thereby throttled instead of
    /// taxing its neighbors.
    pub fault_budget: u64,
    /// Maximum queued + executing requests for this tenant; submissions
    /// beyond it are shed with [`NeoError::Overloaded`]
    /// (`what = "tenant_inflight"`).
    pub max_inflight: usize,
}

impl Default for TenantConfig {
    fn default() -> Self {
        Self {
            policy: OpPolicy::default(),
            plan: None,
            max_retries: neo_ckks::DEFAULT_MAX_RETRIES,
            fault_budget: 64,
            max_inflight: 64,
        }
    }
}

/// One tenant's session: engine plus service-side accounting.
pub struct TenantSession {
    id: TenantId,
    engine: FheEngine,
    cfg: TenantConfig,
    /// Retries + recovered faults charged against `cfg.fault_budget`.
    recovery_spend: AtomicU64,
    /// Requests currently queued or executing.
    inflight: AtomicUsize,
    completed: AtomicU64,
    shed: AtomicU64,
}

impl std::fmt::Debug for TenantSession {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TenantSession")
            .field("id", &self.id)
            .field("cfg", &self.cfg)
            .field("recovery_spend", &self.recovery_spend())
            .field("inflight", &self.inflight())
            .field("completed", &self.completed())
            .field("shed", &self.shed())
            .finish_non_exhaustive()
    }
}

impl TenantSession {
    fn new(id: TenantId, engine: FheEngine, cfg: TenantConfig) -> Self {
        Self {
            id,
            engine,
            cfg,
            recovery_spend: AtomicU64::new(0),
            inflight: AtomicUsize::new(0),
            completed: AtomicU64::new(0),
            shed: AtomicU64::new(0),
        }
    }

    /// The tenant's identifier.
    pub fn id(&self) -> TenantId {
        self.id
    }

    /// The tenant's engine (keys, policy, encoder).
    pub fn engine(&self) -> &FheEngine {
        &self.engine
    }

    /// The service agreement this session was registered with.
    pub fn config(&self) -> &TenantConfig {
        &self.cfg
    }

    /// Retries + recovered faults charged so far in this budget window.
    pub fn recovery_spend(&self) -> u64 {
        self.recovery_spend.load(Ordering::Relaxed)
    }

    /// Whether the recovery budget is exhausted (new submissions will be
    /// shed until the window resets).
    pub fn budget_exhausted(&self) -> bool {
        self.recovery_spend() > self.cfg.fault_budget
    }

    /// Opens a new budget window (e.g. after the operator clears a fault
    /// or on a periodic accounting boundary).
    pub fn reset_budget_window(&self) {
        self.recovery_spend.store(0, Ordering::Relaxed);
    }

    /// Requests currently queued or executing for this tenant.
    pub fn inflight(&self) -> usize {
        self.inflight.load(Ordering::Relaxed)
    }

    /// Successfully executed requests (including partially failed ones —
    /// the batch ran; per-op errors live in the response).
    pub fn completed(&self) -> u64 {
        self.completed.load(Ordering::Relaxed)
    }

    /// Requests shed at admission (queue depth, inflight cap, or budget).
    pub fn shed(&self) -> u64 {
        self.shed.load(Ordering::Relaxed)
    }

    pub(crate) fn charge_recovery(&self, units: u64) {
        if units > 0 {
            self.recovery_spend.fetch_add(units, Ordering::Relaxed);
        }
    }

    pub(crate) fn try_acquire_inflight(&self) -> bool {
        let mut cur = self.inflight.load(Ordering::Relaxed);
        loop {
            if cur >= self.cfg.max_inflight {
                return false;
            }
            match self.inflight.compare_exchange_weak(
                cur,
                cur + 1,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => return true,
                Err(now) => cur = now,
            }
        }
    }

    pub(crate) fn release_inflight(&self) {
        self.inflight.fetch_sub(1, Ordering::Relaxed);
    }

    pub(crate) fn note_completed(&self) {
        self.completed.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn note_shed(&self) {
        self.shed.fetch_add(1, Ordering::Relaxed);
    }
}

/// The set of registered tenants, all sharing one [`CkksContext`].
pub struct TenantRegistry {
    ctx: Arc<CkksContext>,
    tenants: RwLock<HashMap<TenantId, Arc<TenantSession>>>,
}

impl TenantRegistry {
    /// Builds the shared context once; tenants are registered against it.
    ///
    /// # Errors
    ///
    /// [`NeoError::Math`] if the parameters fail validation.
    pub fn new(params: CkksParams) -> Result<Self, NeoError> {
        Ok(Self::with_context(Arc::new(CkksContext::new(params)?)))
    }

    /// Wraps an already-built context (e.g. one shared with an existing
    /// engine).
    pub fn with_context(ctx: Arc<CkksContext>) -> Self {
        Self {
            ctx,
            tenants: RwLock::new(HashMap::new()),
        }
    }

    /// The shared parameter context.
    pub fn context(&self) -> &Arc<CkksContext> {
        &self.ctx
    }

    /// Registers a tenant: fresh keys seeded from `seed`, shared context.
    /// A [`TenantConfig::plan`] is installed via [`FheEngine::with_plan`].
    ///
    /// # Errors
    ///
    /// [`NeoError::InvalidParams`] if `id` is already registered;
    /// [`NeoError::ParameterMismatch`] if `cfg.plan` was tuned for a
    /// different backend than this registry runs.
    pub fn register(
        &self,
        id: TenantId,
        seed: u64,
        cfg: TenantConfig,
    ) -> Result<Arc<TenantSession>, NeoError> {
        let engine = FheEngine::with_context(Arc::clone(&self.ctx), seed);
        self.install(id, engine, cfg)
    }

    /// Shared tail of [`Self::register`] and warm-start registration:
    /// applies the config to a built engine and publishes the session.
    pub(crate) fn install(
        &self,
        id: TenantId,
        mut engine: FheEngine,
        cfg: TenantConfig,
    ) -> Result<Arc<TenantSession>, NeoError> {
        engine.set_policy(cfg.policy);
        if let Some(p) = cfg.plan.as_ref() {
            engine = engine.with_plan(p)?;
        }
        let session = Arc::new(TenantSession::new(id, engine, cfg));
        let mut map = self.tenants.write();
        if map.contains_key(&id) {
            return Err(NeoError::invalid_params(format!(
                "tenant {id} already registered"
            )));
        }
        map.insert(id, Arc::clone(&session));
        Ok(session)
    }

    /// Registers a tenant from a persisted session, falling back to a
    /// cold [`Self::register`] when `store` holds no session for `id`.
    ///
    /// On a warm start the secret key is decoded from its record, the
    /// public key is replayed bit-identically from the recorded seed,
    /// and every persisted KSK is hydrated from its seed-compressed
    /// `b`-parts — skipping the secret-key multiplications of full
    /// generation. On a cold start the fresh session (keys only; KSKs
    /// are persisted as they warm) is saved back to `store` so the next
    /// boot is warm; the caller decides when to
    /// [`neo_store::SessionStore::commit`].
    ///
    /// # Errors
    ///
    /// [`NeoError::InvalidParams`] if `id` is already registered or
    /// `store` was opened over a different context than this registry;
    /// [`NeoError::FaultDetected`] if the tenant's records are
    /// quarantined or fail integrity checks (see
    /// [`neo_store::SessionStore::warm_start`]);
    /// [`NeoError::ParameterMismatch`] on a backend-mismatched plan.
    pub fn register_warm(
        &self,
        id: TenantId,
        store: &mut neo_store::SessionStore,
        seed: u64,
        cfg: TenantConfig,
    ) -> Result<Arc<TenantSession>, NeoError> {
        if !Arc::ptr_eq(store.context(), &self.ctx) {
            return Err(NeoError::invalid_params(
                "session store and registry must share one context",
            ));
        }
        match store.warm_start(id)? {
            Some(engine) => self.install(id, engine, cfg),
            None => {
                let session = self.register(id, seed, cfg)?;
                store.save_engine(id, session.engine(), seed);
                Ok(session)
            }
        }
    }

    /// [`Self::register`] with the default [`TenantConfig`].
    ///
    /// # Errors
    ///
    /// See [`Self::register`].
    pub fn register_default(
        &self,
        id: TenantId,
        seed: u64,
    ) -> Result<Arc<TenantSession>, NeoError> {
        self.register(id, seed, TenantConfig::default())
    }

    /// Looks a tenant up by id.
    pub fn get(&self, id: TenantId) -> Option<Arc<TenantSession>> {
        self.tenants.read().get(&id).cloned()
    }

    /// Number of registered tenants.
    pub fn len(&self) -> usize {
        self.tenants.read().len()
    }

    /// Whether no tenant is registered.
    pub fn is_empty(&self) -> bool {
        self.tenants.read().is_empty()
    }

    /// Ids of all registered tenants, sorted (deterministic iteration).
    pub fn tenant_ids(&self) -> Vec<TenantId> {
        let mut ids: Vec<TenantId> = self.tenants.read().keys().copied().collect();
        ids.sort_unstable();
        ids
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use neo_ckks::CkksParams;

    #[test]
    fn sessions_share_context_but_not_keys() {
        let reg = TenantRegistry::new(CkksParams::test_tiny()).expect("params");
        let a = reg.register_default(1, 11).expect("register");
        let b = reg.register_default(2, 22).expect("register");
        assert!(Arc::ptr_eq(a.engine().context(), b.engine().context()));

        // Same plaintext encrypts to different ciphertexts under the two
        // tenants' keys, and each decrypts only under its own engine.
        let level = a.engine().max_level();
        let ca = a.engine().encrypt_f64(&[1.0, 2.0], level).expect("enc a");
        let got = a.engine().decrypt_f64(&ca).expect("dec a");
        assert!((got[0] - 1.0).abs() < 1e-3 && (got[1] - 2.0).abs() < 1e-3);
        let wrong = b.engine().decrypt_f64(&ca).expect("dec under wrong key");
        assert!(
            (wrong[0] - 1.0).abs() > 1e-3,
            "tenant B's key must not decrypt tenant A's ciphertext"
        );
    }

    #[test]
    fn plan_installed_on_registration() {
        let params = CkksParams::test_tiny();
        let reg = TenantRegistry::new(params.clone()).expect("params");
        let plan = ExecPlan {
            streams: 3,
            ..ExecPlan::unplanned(&params)
        };
        let cfg = TenantConfig {
            plan: Some(plan),
            ..TenantConfig::default()
        };
        let s = reg.register(1, 11, cfg).expect("register");
        assert_eq!(s.engine().plan(), Some(&plan));
    }

    #[test]
    fn backend_mismatched_plan_fails_registration() {
        let params = CkksParams::test_tiny();
        let reg = TenantRegistry::new(params.clone()).expect("params");
        let mut plan = ExecPlan::unplanned(&params);
        plan.backend = match plan.backend {
            neo_ckks::BackendKind::Portable => neo_ckks::BackendKind::Simd,
            neo_ckks::BackendKind::Simd => neo_ckks::BackendKind::Portable,
        };
        let cfg = TenantConfig {
            plan: Some(plan),
            ..TenantConfig::default()
        };
        let err = reg.register(1, 11, cfg).expect_err("mismatch");
        assert_eq!(err.kind().name(), "parameter_mismatch");
    }

    #[test]
    fn duplicate_registration_rejected() {
        let reg = TenantRegistry::new(CkksParams::test_tiny()).expect("params");
        reg.register_default(7, 1).expect("first");
        let err = reg.register_default(7, 2).expect_err("duplicate");
        assert_eq!(err.kind().name(), "invalid_params");
    }

    #[test]
    fn warm_registration_replays_the_cold_session() {
        let mut path = std::env::temp_dir();
        path.push(format!("neo-serve-warm-{}.neostore", std::process::id()));
        let _ = std::fs::remove_file(&path);

        let reg = TenantRegistry::new(CkksParams::test_tiny()).expect("params");
        let mut store =
            neo_store::SessionStore::open(&path, Arc::clone(reg.context())).expect("open store");
        // First boot: cold start, persisted behind the scenes.
        let cold = reg
            .register_warm(1, &mut store, 77, TenantConfig::default())
            .expect("cold register");
        let level = cold.engine().max_level();
        let ct = cold.engine().encrypt_f64(&[4.5], level).expect("enc");
        store.commit().expect("commit");

        // Second boot: fresh registry, warm start from the store.
        let reg2 = TenantRegistry::with_context(Arc::clone(reg.context()));
        let mut store2 =
            neo_store::SessionStore::open(&path, Arc::clone(reg2.context())).expect("reopen store");
        let warm = reg2
            .register_warm(1, &mut store2, 0, TenantConfig::default())
            .expect("warm register");
        let got = warm.engine().decrypt_f64(&ct).expect("dec");
        assert!(
            (got[0] - 4.5).abs() < 1e-3,
            "warm session must decrypt the cold session's ciphertext"
        );

        // A store over a different context is refused.
        let foreign = TenantRegistry::new(CkksParams::test_tiny()).expect("params");
        let err = foreign
            .register_warm(2, &mut store2, 0, TenantConfig::default())
            .expect_err("foreign context");
        assert_eq!(err.kind().name(), "invalid_params");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn inflight_cap_and_budget_accounting() {
        let reg = TenantRegistry::new(CkksParams::test_tiny()).expect("params");
        let cfg = TenantConfig {
            max_inflight: 2,
            fault_budget: 3,
            ..TenantConfig::default()
        };
        let s = reg.register(9, 5, cfg).expect("register");
        assert!(s.try_acquire_inflight());
        assert!(s.try_acquire_inflight());
        assert!(!s.try_acquire_inflight(), "cap of 2");
        s.release_inflight();
        assert!(s.try_acquire_inflight());

        assert!(!s.budget_exhausted());
        s.charge_recovery(4);
        assert!(s.budget_exhausted());
        s.reset_budget_window();
        assert!(!s.budget_exhausted());
    }
}
