//! The service loop: a deterministic synchronous core plus a threaded
//! front-end.
//!
//! [`ServiceCore`] is single-threaded and deterministic — given the same
//! submission sequence it forms the same batches, sheds the same
//! requests, and (because per-request execution is bit-exact regardless
//! of the rayon schedule) returns the same ciphertexts. The benchmark
//! and the isolation tests drive it directly.
//!
//! [`NeoService`] wraps the core in a worker thread behind a *bounded*
//! channel: `submit` never blocks — a full channel is backpressure,
//! answered immediately with [`NeoError::Overloaded`] — and each
//! accepted request resolves through its own [`ResponseHandle`].

use crate::admission::{AdmissionConfig, AdmissionQueue, QueuedRequest};
use crate::executor::{execute_coalesced, BatchStats, Response};
use crate::tenant::{TenantId, TenantRegistry};
use neo_ckks::{BatchProgram, Ciphertext, NeoError};
use neo_gpu_sim::DeviceModel;
use std::collections::HashMap;
use std::sync::mpsc;
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Service-level configuration.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Admission policy (window, caps, makespan budget, cost model).
    pub admission: AdmissionConfig,
    /// Execute a batch's requests concurrently on the rayon pool
    /// (results stay bit-identical to serial; only wall time changes).
    pub parallel: bool,
    /// Device the cost oracle prices batches against.
    pub device: DeviceModel,
    /// Threaded front-end only: how long the worker waits for more
    /// arrivals before cutting a partial batch.
    pub linger: Duration,
    /// Threaded front-end only: submission-channel bound; `submit`
    /// sheds with [`NeoError::Overloaded`] (`what = "channel"`) when
    /// it is full.
    pub channel_bound: usize,
}

impl Default for ServeConfig {
    fn default() -> Self {
        Self {
            admission: AdmissionConfig::default(),
            parallel: true,
            device: DeviceModel::a100(),
            linger: Duration::from_micros(200),
            channel_bound: 1024,
        }
    }
}

/// Cumulative service counters.
#[derive(Debug, Clone, Copy, Default)]
pub struct ServeStats {
    /// Requests accepted into the queue.
    pub submitted: u64,
    /// Requests answered after execution.
    pub completed: u64,
    /// Shed: admission queue at bound.
    pub shed_queue: u64,
    /// Shed: tenant recovery budget exhausted.
    pub shed_budget: u64,
    /// Shed: tenant inflight cap.
    pub shed_inflight: u64,
    /// Batches executed.
    pub batches: u64,
    /// Requests across all executed batches.
    pub coalesced_requests: u64,
    /// Engine retries across all requests.
    pub retries: u64,
    /// Faults absorbed by retry across all requests.
    pub faults_recovered: u64,
}

impl ServeStats {
    /// Total requests shed at admission.
    pub fn shed_total(&self) -> u64 {
        self.shed_queue + self.shed_budget + self.shed_inflight
    }

    /// Mean requests per executed batch.
    pub fn coalescing_factor(&self) -> f64 {
        if self.batches == 0 {
            0.0
        } else {
            self.coalesced_requests as f64 / self.batches as f64
        }
    }
}

/// The synchronous, deterministic service core.
pub struct ServiceCore {
    registry: Arc<TenantRegistry>,
    cfg: ServeConfig,
    queue: AdmissionQueue,
    next_id: u64,
    stats: ServeStats,
}

impl ServiceCore {
    /// A core over `registry` with policy `cfg`.
    pub fn new(registry: Arc<TenantRegistry>, cfg: ServeConfig) -> Self {
        let queue = AdmissionQueue::new(cfg.admission.clone());
        Self {
            registry,
            cfg,
            queue,
            next_id: 1,
            stats: ServeStats::default(),
        }
    }

    /// The tenant registry.
    pub fn registry(&self) -> &Arc<TenantRegistry> {
        &self.registry
    }

    /// Pending (admitted, not yet executed) requests.
    pub fn queue_depth(&self) -> usize {
        self.queue.depth()
    }

    /// Cumulative counters.
    pub fn stats(&self) -> ServeStats {
        self.stats
    }

    /// Submits a request for `tenant`; returns its request id.
    ///
    /// # Errors
    ///
    /// * [`NeoError::InvalidParams`] — unknown tenant.
    /// * [`NeoError::Overloaded`] — shed: tenant recovery budget
    ///   exhausted (`retry_budget`), tenant inflight cap
    ///   (`tenant_inflight`), or queue at bound (`queue_depth`).
    pub fn submit(
        &mut self,
        tenant: TenantId,
        program: BatchProgram,
        inputs: Vec<Ciphertext>,
    ) -> Result<u64, NeoError> {
        let session = self.registry.get(tenant).ok_or_else(|| {
            NeoError::invalid_params(format!("tenant {tenant} is not registered"))
        })?;
        if session.budget_exhausted() {
            session.note_shed();
            self.stats.shed_budget += 1;
            crate::metrics::note_shed("retry_budget");
            return Err(NeoError::overloaded(
                "retry_budget",
                format!(
                    "tenant {tenant} spent {} recovery units against a budget of {}",
                    session.recovery_spend(),
                    session.config().fault_budget
                ),
            ));
        }
        if !session.try_acquire_inflight() {
            session.note_shed();
            self.stats.shed_inflight += 1;
            crate::metrics::note_shed("tenant_inflight");
            return Err(NeoError::overloaded(
                "tenant_inflight",
                format!(
                    "tenant {tenant} at its inflight cap of {}",
                    session.config().max_inflight
                ),
            ));
        }

        let engine = session.engine();
        let level = inputs
            .first()
            .map_or_else(|| engine.max_level(), Ciphertext::level);
        let noise_bits = inputs
            .iter()
            .map(|ct| engine.noise_budget_bits(ct))
            .fold(f64::INFINITY, f64::min);
        let functional = engine.context().params();
        let pricing = self
            .cfg
            .admission
            .pricing_params
            .as_ref()
            .unwrap_or(functional);
        let solo_est = crate::admission::price_request(
            &program,
            pricing,
            crate::admission::pricing_level(level, functional, pricing),
            &self.cfg.admission.cost,
            &self.cfg.device,
        );
        let id = self.next_id;
        let req = QueuedRequest {
            id,
            tenant,
            program,
            inputs,
            level,
            noise_bits,
            solo_est,
            submitted: Instant::now(),
        };
        if let Err(e) = self.queue.try_enqueue(req) {
            session.release_inflight();
            session.note_shed();
            self.stats.shed_queue += 1;
            crate::metrics::note_shed("queue_depth");
            return Err(e);
        }
        self.next_id += 1;
        self.stats.submitted += 1;
        crate::metrics::note_request();
        crate::metrics::set_queue_depth(self.queue.depth());
        Ok(id)
    }

    /// Coalesces and executes one batch off the queue, or `None` when
    /// the queue is empty.
    pub fn drain_batch(&mut self) -> Option<(Vec<Response>, BatchStats)> {
        let params = self.registry.context().params().clone();
        let batch = self.queue.coalesce(&params, &self.cfg.device)?;
        let (responses, stats) = execute_coalesced(&self.registry, batch, self.cfg.parallel);
        self.stats.batches += 1;
        self.stats.coalesced_requests += stats.requests as u64;
        self.stats.completed += responses.len() as u64;
        for r in &responses {
            self.stats.retries += u64::from(r.retries);
            self.stats.faults_recovered += u64::from(r.faults_recovered);
        }
        crate::metrics::set_queue_depth(self.queue.depth());
        Some((responses, stats))
    }

    /// Drains the queue to empty; responses in execution order.
    pub fn run_until_idle(&mut self) -> Vec<Response> {
        let mut out = Vec::new();
        while let Some((responses, _)) = self.drain_batch() {
            out.extend(responses);
        }
        out
    }
}

enum Msg {
    Submit {
        tenant: TenantId,
        program: BatchProgram,
        inputs: Vec<Ciphertext>,
        reply: mpsc::Sender<Response>,
    },
}

/// Handle to one accepted request's eventual response.
#[derive(Debug)]
pub struct ResponseHandle {
    rx: mpsc::Receiver<Response>,
}

impl ResponseHandle {
    /// Blocks until the response arrives.
    ///
    /// # Errors
    ///
    /// [`NeoError::Overloaded`] (`what = "service_stopped"`) if the
    /// service shut down before answering.
    pub fn wait(self) -> Result<Response, NeoError> {
        self.rx.recv().map_err(|_| {
            NeoError::overloaded("service_stopped", "service shut down before responding")
        })
    }
}

/// Threaded front-end over [`ServiceCore`]: bounded-channel submission,
/// one worker thread forming and executing batches.
#[derive(Debug)]
pub struct NeoService {
    tx: Option<mpsc::SyncSender<Msg>>,
    worker: Option<JoinHandle<ServeStats>>,
}

impl NeoService {
    /// Spawns the worker thread.
    pub fn spawn(registry: Arc<TenantRegistry>, cfg: ServeConfig) -> Self {
        let (tx, rx) = mpsc::sync_channel::<Msg>(cfg.channel_bound.max(1));
        let linger = cfg.linger;
        let window = cfg.admission.coalesce_window.max(1);
        let worker = std::thread::spawn(move || {
            let mut core = ServiceCore::new(registry, cfg);
            let mut waiters: HashMap<u64, mpsc::Sender<Response>> = HashMap::new();
            let dispatch =
                |responses: Vec<Response>, waiters: &mut HashMap<u64, mpsc::Sender<Response>>| {
                    for resp in responses {
                        if let Some(reply) = waiters.remove(&resp.request_id) {
                            let _ = reply.send(resp);
                        }
                    }
                };
            loop {
                match rx.recv_timeout(linger) {
                    Ok(Msg::Submit {
                        tenant,
                        program,
                        inputs,
                        reply,
                    }) => {
                        match core.submit(tenant, program, inputs) {
                            Ok(id) => {
                                waiters.insert(id, reply);
                            }
                            Err(e) => {
                                let _ = reply.send(Response::shed(tenant, e));
                            }
                        }
                        if core.queue_depth() >= window {
                            if let Some((responses, _)) = core.drain_batch() {
                                dispatch(responses, &mut waiters);
                            }
                        }
                    }
                    Err(mpsc::RecvTimeoutError::Timeout) => {
                        if core.queue_depth() > 0 {
                            if let Some((responses, _)) = core.drain_batch() {
                                dispatch(responses, &mut waiters);
                            }
                        }
                    }
                    Err(mpsc::RecvTimeoutError::Disconnected) => {
                        let responses = core.run_until_idle();
                        dispatch(responses, &mut waiters);
                        break;
                    }
                }
            }
            core.stats()
        });
        Self {
            tx: Some(tx),
            worker: Some(worker),
        }
    }

    /// Submits without blocking; a full channel is immediate
    /// backpressure.
    ///
    /// # Errors
    ///
    /// [`NeoError::Overloaded`] (`what = "channel"`) when the submission
    /// channel is full, (`what = "service_stopped"`) after shutdown.
    pub fn submit(
        &self,
        tenant: TenantId,
        program: BatchProgram,
        inputs: Vec<Ciphertext>,
    ) -> Result<ResponseHandle, NeoError> {
        let tx = self
            .tx
            .as_ref()
            .ok_or_else(|| NeoError::overloaded("service_stopped", "service already shut down"))?;
        let (reply, rx) = mpsc::channel();
        match tx.try_send(Msg::Submit {
            tenant,
            program,
            inputs,
            reply,
        }) {
            Ok(()) => Ok(ResponseHandle { rx }),
            Err(mpsc::TrySendError::Full(_)) => {
                crate::metrics::note_shed("channel");
                Err(NeoError::overloaded(
                    "channel",
                    "submission channel full — retry with backoff",
                ))
            }
            Err(mpsc::TrySendError::Disconnected(_)) => Err(NeoError::overloaded(
                "service_stopped",
                "service worker exited",
            )),
        }
    }

    /// Stops accepting, drains the queue, and returns final counters.
    pub fn shutdown(mut self) -> ServeStats {
        drop(self.tx.take());
        self.worker
            .take()
            .map(|w| w.join().unwrap_or_default())
            .unwrap_or_default()
    }
}

impl Drop for NeoService {
    fn drop(&mut self) {
        drop(self.tx.take());
        if let Some(w) = self.worker.take() {
            let _ = w.join();
        }
    }
}
