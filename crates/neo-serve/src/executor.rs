//! Executor bridge: runs a coalesced batch against the tenants' engines.
//!
//! Key warm-up runs **serially, in admission order, before the parallel
//! region**: each tenant's key chest draws from its own deterministic
//! RNG, and warming from worker threads would make the generated keys
//! depend on thread timing. With every key cached up front, the
//! per-request executions are free to run concurrently on the rayon
//! pool — requests are independent (separate tenants or separate
//! programs), and each one runs its own program *serially* inside, so
//! results are bit-identical to a fully serial pass.

use crate::admission::CoalescedBatch;
use crate::tenant::{TenantId, TenantRegistry};
use neo_ckks::{Ciphertext, NeoError};
use neo_trace::SpanGuard;
use rayon::prelude::*;
use std::time::{Duration, Instant};

/// The service's answer to one request.
#[derive(Debug)]
pub struct Response {
    /// The id [`crate::ServiceCore::submit`] returned, or `0` if the
    /// request was shed at admission (it never entered the queue).
    pub request_id: u64,
    /// Owning tenant.
    pub tenant: TenantId,
    /// Whole-batch outcome: per-op results on success, or the structural
    /// error (shed, warm-up failure, malformed program) that prevented
    /// execution.
    pub outcome: Result<Vec<Result<Ciphertext, NeoError>>, NeoError>,
    /// Retries the engine attempted across the program's ops.
    pub retries: u32,
    /// Detected faults retry absorbed (results still bit-exact).
    pub faults_recovered: u32,
    /// Time from submission to batch formation.
    pub queue: Duration,
    /// Time executing the request inside its batch.
    pub exec: Duration,
    /// Requests in the coalesced batch this one ran in (0 when shed).
    pub batch_requests: usize,
    /// Stream count the cost oracle picked for the batch (0 when shed).
    pub streams: usize,
}

impl Response {
    /// A response for a request shed before entering the queue.
    pub(crate) fn shed(tenant: TenantId, err: NeoError) -> Self {
        Self {
            request_id: 0,
            tenant,
            outcome: Err(err),
            retries: 0,
            faults_recovered: 0,
            queue: Duration::ZERO,
            exec: Duration::ZERO,
            batch_requests: 0,
            streams: 0,
        }
    }
}

/// Wall-clock accounting for one executed batch.
#[derive(Debug, Clone, Copy)]
pub struct BatchStats {
    /// Requests coalesced into the batch.
    pub requests: usize,
    /// Total `BatchOp`s across the batch.
    pub total_ops: usize,
    /// Stream count the cost oracle picked.
    pub streams: usize,
    /// The oracle's simulated makespan for the merged graph.
    pub est_makespan: Duration,
    /// Host wall time actually spent executing the batch.
    pub exec_wall: Duration,
}

/// Executes a coalesced batch: serial deterministic warm-up, then the
/// per-request executions in admission order — concurrently across
/// requests when `parallel` is set, each request serial inside.
pub fn execute_coalesced(
    registry: &TenantRegistry,
    batch: CoalescedBatch,
    parallel: bool,
) -> (Vec<Response>, BatchStats) {
    let _span = SpanGuard::enter("serve_batch", || {
        format!(
            "requests={} ops={} streams={}",
            batch.requests.len(),
            batch.total_ops,
            batch.streams
        )
    });
    let t0 = Instant::now();
    let n_requests = batch.requests.len();
    let streams = batch.streams;
    let est_makespan = batch.est_makespan;
    let total_ops = batch.total_ops;

    // Phase 1 — deterministic warm-up, admission order. A request whose
    // warm-up fails is answered with the error and skipped in phase 2
    // (its key material may be incomplete).
    let mut warm: Vec<Option<NeoError>> = Vec::with_capacity(n_requests);
    for req in &batch.requests {
        let res = match registry.get(req.tenant) {
            Some(session) => session.engine().warm_program(&req.program, req.level).err(),
            None => Some(NeoError::invalid_params(format!(
                "tenant {} vanished between admission and execution",
                req.tenant
            ))),
        };
        warm.push(res);
    }

    // Phase 2 — execute. Collect preserves input order, so responses come
    // back in admission order regardless of rayon's schedule.
    let run_one = |(idx, req): (usize, &crate::admission::QueuedRequest)| -> Response {
        let _rspan = SpanGuard::enter("serve_request", || {
            format!("tenant={} request={}", req.tenant, req.id)
        });
        let queued = t0.saturating_duration_since(req.submitted);
        let e0 = Instant::now();
        let (outcome, retries, recovered) = match (&warm[idx], registry.get(req.tenant)) {
            (Some(err), _) => (Err(err.clone()), 0, 0),
            (None, None) => (
                Err(NeoError::invalid_params(format!(
                    "tenant {} vanished between admission and execution",
                    req.tenant
                ))),
                0,
                0,
            ),
            (None, Some(session)) => {
                match session.engine().execute_batch_with_report(
                    &req.program,
                    &req.inputs,
                    false,
                    session.config().max_retries,
                ) {
                    Ok(report) => {
                        let r = report.total_retries();
                        let f = report.total_recovered();
                        (Ok(report.results), r, f)
                    }
                    Err(e) => (Err(e), 0, 0),
                }
            }
        };
        Response {
            request_id: req.id,
            tenant: req.tenant,
            outcome,
            retries,
            faults_recovered: recovered,
            queue: queued,
            exec: e0.elapsed(),
            batch_requests: n_requests,
            streams,
        }
    };

    let indexed: Vec<(usize, &crate::admission::QueuedRequest)> =
        batch.requests.iter().enumerate().collect();
    let responses: Vec<Response> = if parallel {
        indexed.into_par_iter().map(run_one).collect()
    } else {
        indexed.into_iter().map(run_one).collect()
    };

    // Post-execution accounting, serial so budget charges are ordered.
    for resp in &responses {
        if let Some(session) = registry.get(resp.tenant) {
            session.charge_recovery(u64::from(resp.retries) + u64::from(resp.faults_recovered));
            session.note_completed();
            session.release_inflight();
        }
    }

    let exec_wall = t0.elapsed();
    crate::metrics::note_batch(
        n_requests,
        exec_wall.as_nanos() as u64,
        est_makespan.as_micros() as u64,
    );
    for resp in &responses {
        crate::metrics::note_response(
            resp.queue.as_nanos() as u64,
            (resp.queue + resp.exec).as_nanos() as u64,
        );
    }

    (
        responses,
        BatchStats {
            requests: n_requests,
            total_ops,
            streams,
            est_makespan,
            exec_wall,
        },
    )
}
