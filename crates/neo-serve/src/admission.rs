//! Admission: priority ordering, batch coalescing, and the sim-priced
//! cut-off.
//!
//! Queued requests are ordered by urgency — lowest remaining noise
//! budget first (closest to exhaustion), then deepest level consumed,
//! then FIFO — and coalesced greedily in that order. The noise term is
//! *aged* by queue wait ([`AdmissionConfig::aging_bits_per_sec`]), so a
//! healthy request cannot be starved indefinitely by a stream of
//! noise-poor arrivals. Pricing is two-tier so admission stays cheap at
//! high request rates:
//!
//! 1. at submission each request is priced **once** with a
//!    single-stream run of the discrete-event simulator over its own
//!    kernel graph ([`price_request`]); the coalescing cut then uses
//!    the *additive* sum of solo estimates against
//!    [`AdmissionConfig::makespan_budget`] — a conservative bound,
//!    since it ignores cross-request stream overlap;
//! 2. the admitted set's graphs are merged into one [`OpGraph`]
//!    (disjoint union: requests share no edges, so the multi-stream
//!    scheduler is free to overlap them) and a single
//!    [`neo_sched::estimate_makespan_best`] sweep refines the estimate
//!    and picks the stream count that travels with the batch to the
//!    executor.
//!
//! The batch is cut at the first candidate that would push the summed
//! estimate past the budget, or at the window/op caps.

use crate::tenant::TenantId;
use neo_ckks::cost::CostConfig;
use neo_ckks::{BatchProgram, Ciphertext, ExecPlan, NeoError, VerifyPolicy};
use neo_gpu_sim::DeviceModel;
use neo_plan::{param_fingerprint, program_shape, PlanKey, PlanStore};
use neo_sched::{estimate_makespan, estimate_makespan_best, OpGraph};
use std::hash::{Hash, Hasher};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Prices one request: the simulated single-stream makespan of its
/// kernel graph at `level` on `dev`. Computed once per request at
/// submission; the coalescing cut sums these.
pub fn price_request(
    program: &BatchProgram,
    params: &neo_ckks::CkksParams,
    level: usize,
    cost: &CostConfig,
    dev: &DeviceModel,
) -> Duration {
    let g = program.kernel_graph(params, level, cost);
    estimate_makespan(&g, dev, 1)
}

/// Knobs of the admission policy.
#[derive(Debug, Clone)]
pub struct AdmissionConfig {
    /// Maximum requests coalesced into one batch (the coalescing
    /// window).
    pub coalesce_window: usize,
    /// Maximum total [`neo_ckks::BatchOp`]s across a coalesced batch.
    pub max_batch_ops: usize,
    /// Pending-queue bound; submissions beyond it are shed with
    /// [`NeoError::Overloaded`] (`what = "queue_depth"`).
    pub max_queue_depth: usize,
    /// Simulated-makespan budget per coalesced batch: the cost oracle's
    /// cut-off. The head-of-queue request is always admitted even if it
    /// alone exceeds the budget (otherwise it could starve forever).
    pub makespan_budget: Duration,
    /// Stream counts the cost oracle sweeps (`1..=max_streams`); the
    /// winner is recorded on the batch.
    pub max_streams: usize,
    /// Kernel cost model used to build request graphs.
    pub cost: CostConfig,
    /// Parameter set the cost oracle prices against. `None` prices on
    /// the registry's functional parameters; a deployment whose host
    /// runs reduced functional parameters (the usual testing setup in
    /// this repo) should point this at the accelerator's real set (e.g.
    /// `ParamSet::C.params()`) so makespans — and therefore batch
    /// cut-offs and stream choices — reflect the device being scheduled,
    /// not the host-side stand-in. Request levels are mapped by distance
    /// from the top of the chain: a request `d` levels below the
    /// functional ceiling prices `d` levels below the pricing ceiling.
    pub pricing_params: Option<neo_ckks::CkksParams>,
    /// Priority aging: bits of urgency credit per second of queue wait.
    /// Each coalesce sorts by *effective* noise budget —
    /// `noise_bits − aging_bits_per_sec × waited` — so a healthy request
    /// stuck behind a stream of noise-starved arrivals eventually
    /// becomes the most urgent itself instead of starving. `0.0`
    /// disables aging (the pre-0.4 static ordering).
    pub aging_bits_per_sec: f64,
    /// Plan cache shared with the `neo-plan` autotuner. When set, a
    /// coalesced batch whose (pricing fingerprint, shape) key hits the
    /// cache reuses the cached stream choice and predicted makespan
    /// instead of re-running the [`estimate_makespan_best`] sweep — the
    /// sweep the planner already paid for. Misses run the sweep and
    /// populate the cache. Cache-served admissions are counted by
    /// `serve_plan_admissions_total`.
    pub plan_store: Option<Arc<PlanStore>>,
}

impl Default for AdmissionConfig {
    fn default() -> Self {
        Self {
            coalesce_window: 32,
            max_batch_ops: 512,
            max_queue_depth: 4096,
            makespan_budget: Duration::from_secs(30),
            max_streams: 4,
            cost: CostConfig::neo(),
            aging_bits_per_sec: 1.0,
            pricing_params: None,
            plan_store: None,
        }
    }
}

/// Maps a request level on the functional chain onto the pricing chain,
/// preserving distance from the top: serving traffic arrives near the
/// chain ceiling, so a request `d` levels into its budget prices `d`
/// levels into the accelerator's budget.
pub fn pricing_level(
    level: usize,
    functional: &neo_ckks::CkksParams,
    pricing: &neo_ckks::CkksParams,
) -> usize {
    let depth = functional.max_level.saturating_sub(level);
    pricing.max_level.saturating_sub(depth)
}

/// A submitted request waiting for admission.
#[derive(Debug)]
pub struct QueuedRequest {
    /// Service-assigned sequence number (FIFO tiebreak + response key).
    pub id: u64,
    /// Owning tenant.
    pub tenant: TenantId,
    /// The program to run.
    pub program: BatchProgram,
    /// Batch inputs (all at one level, per [`BatchProgram`] contract).
    pub inputs: Vec<Ciphertext>,
    /// Common input level (drives key warm-up and graph costing).
    pub level: usize,
    /// Minimum noise budget across the inputs, in bits — the urgency
    /// signal: ciphertexts nearest exhaustion run first.
    pub noise_bits: f64,
    /// The request's solo single-stream makespan estimate (see
    /// [`price_request`]), summed by the coalescing cut.
    pub solo_est: Duration,
    /// Enqueue timestamp (queue-latency accounting).
    pub submitted: Instant,
}

impl QueuedRequest {
    /// Priority key: lower sorts first. Noise-starved requests, then
    /// deeper (more-consumed) levels, then FIFO order. Queue wait ages
    /// the noise term down at `aging_bits_per_sec`, so long-waiting
    /// requests converge on the front of the queue; `now` is captured
    /// once per coalesce so one sort sees one consistent clock.
    fn priority(&self, now: Instant, aging_bits_per_sec: f64) -> (u64, usize, u64) {
        let waited = now.saturating_duration_since(self.submitted).as_secs_f64();
        // f64 → order-preserving u64 for a total order without NaN traps
        // (budgets are finite and non-negative).
        let bits = (self.noise_bits - aging_bits_per_sec * waited)
            .max(0.0)
            .to_bits();
        (bits, self.level, self.id)
    }
}

/// A coalesced batch ready for execution: the admitted requests, their
/// merged kernel graph, and the cost oracle's verdict.
#[derive(Debug)]
pub struct CoalescedBatch {
    /// Admitted requests, in priority order.
    pub requests: Vec<QueuedRequest>,
    /// Disjoint union of the requests' kernel graphs.
    pub graph: OpGraph,
    /// Stream count the simulator found best for this batch.
    pub streams: usize,
    /// Simulated makespan at that stream count.
    pub est_makespan: Duration,
    /// Total `BatchOp`s across the batch.
    pub total_ops: usize,
}

impl CoalescedBatch {
    /// Requests per batch — the coalescing factor contribution.
    pub fn coalesced(&self) -> usize {
        self.requests.len()
    }
}

/// The pending-request queue plus the coalescing policy.
#[derive(Debug)]
pub struct AdmissionQueue {
    cfg: AdmissionConfig,
    pending: Vec<QueuedRequest>,
}

impl AdmissionQueue {
    /// Empty queue under `cfg`.
    pub fn new(cfg: AdmissionConfig) -> Self {
        Self {
            cfg,
            pending: Vec::new(),
        }
    }

    /// The active configuration.
    pub fn config(&self) -> &AdmissionConfig {
        &self.cfg
    }

    /// Pending requests not yet coalesced.
    pub fn depth(&self) -> usize {
        self.pending.len()
    }

    /// Accepts a request, or sheds it when the queue is at its bound.
    ///
    /// # Errors
    ///
    /// [`NeoError::Overloaded`] (`what = "queue_depth"`) when
    /// `depth() >= max_queue_depth`.
    pub fn try_enqueue(&mut self, req: QueuedRequest) -> Result<(), NeoError> {
        if self.pending.len() >= self.cfg.max_queue_depth {
            return Err(NeoError::overloaded(
                "queue_depth",
                format!(
                    "admission queue at bound {} — request {} from tenant {} shed",
                    self.cfg.max_queue_depth, req.id, req.tenant
                ),
            ));
        }
        self.pending.push(req);
        Ok(())
    }

    /// Forms the next batch: sorts pending requests by urgency, admits
    /// the head unconditionally, then greedily admits candidates while
    /// the summed solo estimates stay within budget and the window/op
    /// caps hold. The admitted set's merged graph is then priced once
    /// with a full stream sweep. Returns `None` on an empty queue.
    ///
    /// The cut is *ordered*: the first over-budget candidate ends the
    /// batch rather than being skipped, so admission never reorders a
    /// cheap request past an urgent expensive one.
    pub fn coalesce(
        &mut self,
        params: &neo_ckks::CkksParams,
        dev: &DeviceModel,
    ) -> Option<CoalescedBatch> {
        if self.pending.is_empty() {
            return None;
        }
        let now = Instant::now();
        let aging = self.cfg.aging_bits_per_sec;
        self.pending.sort_by_key(|r| r.priority(now, aging));

        // Head of queue: always admitted, even over budget (it would
        // otherwise starve forever).
        let mut total_ops = self.pending[0].program.ops.len();
        let mut summed_est = self.pending[0].solo_est;
        let mut admitted = 1usize;
        while admitted < self.pending.len() && admitted < self.cfg.coalesce_window {
            let cand = &self.pending[admitted];
            let cand_ops = cand.program.ops.len();
            if total_ops + cand_ops > self.cfg.max_batch_ops {
                break;
            }
            if summed_est + cand.solo_est > self.cfg.makespan_budget {
                break;
            }
            summed_est += cand.solo_est;
            total_ops += cand_ops;
            admitted += 1;
        }

        let requests: Vec<QueuedRequest> = self.pending.drain(..admitted).collect();
        let pricing = self.cfg.pricing_params.as_ref().unwrap_or(params);
        let mut graph = OpGraph::default();
        for (i, req) in requests.iter().enumerate() {
            let lvl = pricing_level(req.level, params, pricing);
            req.program
                .append_kernel_graph(&mut graph, pricing, lvl, &self.cfg.cost, i);
        }
        // Plan-cache fast path: an identically-shaped batch under the
        // same pricing parameters was already swept (by the planner or a
        // previous coalesce) — reuse its stream choice and estimate
        // rather than paying the sweep again.
        let key = self
            .cfg
            .plan_store
            .as_ref()
            .map(|_| batch_plan_key(pricing, params, &requests));
        if let (Some(store), Some(key)) = (&self.cfg.plan_store, key) {
            if let Some(plan) = store.get(&key) {
                crate::metrics::note_plan_admission();
                return Some(CoalescedBatch {
                    requests,
                    graph,
                    streams: plan.streams,
                    est_makespan: Duration::from_secs_f64(plan.predicted_makespan_s),
                    total_ops,
                });
            }
        }
        let (streams, est) = estimate_makespan_best(&graph, dev, self.cfg.max_streams);
        if let (Some(store), Some(key)) = (&self.cfg.plan_store, key) {
            store.insert(
                key,
                ExecPlan {
                    method: self.cfg.cost.method,
                    word_size_t: pricing.klss.map(|k| k.word_size_t),
                    fusion: false,
                    streams,
                    verify: VerifyPolicy::Off,
                    backend: pricing.backend,
                    predicted_makespan_s: est.as_secs_f64(),
                },
            );
        }
        Some(CoalescedBatch {
            requests,
            graph,
            streams,
            est_makespan: est,
            total_ops,
        })
    }
}

/// Cache key of a coalesced batch: the pricing-parameter fingerprint
/// plus the combined shape of the admitted programs at their mapped
/// pricing levels, in priority order.
fn batch_plan_key(
    pricing: &neo_ckks::CkksParams,
    functional: &neo_ckks::CkksParams,
    requests: &[QueuedRequest],
) -> PlanKey {
    let mut h = std::collections::hash_map::DefaultHasher::new();
    for req in requests {
        let lvl = pricing_level(req.level, functional, pricing);
        program_shape(&req.program, lvl).hash(&mut h);
    }
    PlanKey {
        fingerprint: param_fingerprint(pricing),
        shape: h.finish(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use neo_ckks::{BatchOp, CkksParams, FheEngine, Slot};

    fn req(
        id: u64,
        tenant: TenantId,
        noise_bits: f64,
        level: usize,
        n_ops: usize,
    ) -> QueuedRequest {
        let engine = FheEngine::new(CkksParams::test_tiny(), 42).expect("engine");
        let ct = engine.encrypt_f64(&[1.0], level).expect("enc");
        let mut program = BatchProgram::new();
        for _ in 0..n_ops {
            program
                .try_push(BatchOp::HAdd(Slot::Input(0), Slot::Input(0)))
                .expect("push");
        }
        let solo_est = price_request(
            &program,
            &CkksParams::test_tiny(),
            level,
            &CostConfig::neo(),
            &DeviceModel::a100(),
        );
        QueuedRequest {
            id,
            tenant,
            program,
            inputs: vec![ct],
            level,
            noise_bits,
            solo_est,
            submitted: Instant::now(),
        }
    }

    #[test]
    fn queue_bound_sheds_with_typed_error() {
        let cfg = AdmissionConfig {
            max_queue_depth: 2,
            ..AdmissionConfig::default()
        };
        let mut q = AdmissionQueue::new(cfg);
        q.try_enqueue(req(0, 1, 50.0, 3, 1)).expect("fits");
        q.try_enqueue(req(1, 1, 50.0, 3, 1)).expect("fits");
        let err = q.try_enqueue(req(2, 1, 50.0, 3, 1)).expect_err("bound");
        assert_eq!(err.kind().name(), "overloaded");
    }

    #[test]
    fn coalesce_orders_by_urgency_and_respects_window() {
        let params = CkksParams::test_tiny();
        let dev = DeviceModel::a100();
        let cfg = AdmissionConfig {
            coalesce_window: 2,
            ..AdmissionConfig::default()
        };
        let mut q = AdmissionQueue::new(cfg);
        // Submitted in id order, but 2 is the most noise-starved.
        q.try_enqueue(req(0, 1, 80.0, 3, 2)).expect("enqueue");
        q.try_enqueue(req(1, 2, 60.0, 3, 2)).expect("enqueue");
        q.try_enqueue(req(2, 3, 10.0, 3, 2)).expect("enqueue");
        let batch = q.coalesce(&params, &dev).expect("batch");
        assert_eq!(batch.requests.len(), 2, "window of 2");
        assert_eq!(batch.requests[0].id, 2, "most urgent first");
        assert_eq!(batch.requests[1].id, 1);
        assert_eq!(q.depth(), 1, "one left behind");
        assert!(batch.streams >= 1 && batch.est_makespan > Duration::ZERO);
        assert_eq!(batch.total_ops, 4);
    }

    #[test]
    fn aging_prevents_starvation_of_healthy_requests() {
        let params = CkksParams::test_tiny();
        let dev = DeviceModel::a100();
        let cfg = AdmissionConfig {
            coalesce_window: 1,
            aging_bits_per_sec: 1.0,
            ..AdmissionConfig::default()
        };
        let mut q = AdmissionQueue::new(cfg);
        // A healthy request (80 bits of budget) that has waited 100s,
        // against a freshly-arrived noise-starved one (10 bits). Without
        // aging the fresh request wins every round and the healthy one
        // starves; with aging the effective budget 80 − 100 < 10 puts
        // the old request in front.
        let mut old = req(0, 1, 80.0, 3, 1);
        old.submitted = Instant::now() - Duration::from_secs(100);
        q.try_enqueue(old).expect("enqueue");
        q.try_enqueue(req(1, 2, 10.0, 3, 1)).expect("enqueue");
        let batch = q.coalesce(&params, &dev).expect("batch");
        assert_eq!(
            batch.requests[0].id, 0,
            "the long-waiting request must be served first"
        );

        // With aging disabled, the static order reasserts itself.
        let cfg = AdmissionConfig {
            coalesce_window: 1,
            aging_bits_per_sec: 0.0,
            ..AdmissionConfig::default()
        };
        let mut q = AdmissionQueue::new(cfg);
        let mut old = req(0, 1, 80.0, 3, 1);
        old.submitted = Instant::now() - Duration::from_secs(100);
        q.try_enqueue(old).expect("enqueue");
        q.try_enqueue(req(1, 2, 10.0, 3, 1)).expect("enqueue");
        let batch = q.coalesce(&params, &dev).expect("batch");
        assert_eq!(batch.requests[0].id, 1, "no aging: raw noise order");
    }

    #[test]
    fn makespan_budget_cuts_batch_but_head_always_admitted() {
        let params = CkksParams::test_tiny();
        let dev = DeviceModel::a100();
        // Budget so small nothing fits: the head must still be admitted.
        let cfg = AdmissionConfig {
            makespan_budget: Duration::from_nanos(1),
            ..AdmissionConfig::default()
        };
        let mut q = AdmissionQueue::new(cfg);
        q.try_enqueue(req(0, 1, 50.0, 3, 3)).expect("enqueue");
        q.try_enqueue(req(1, 2, 50.0, 3, 3)).expect("enqueue");
        let batch = q.coalesce(&params, &dev).expect("batch");
        assert_eq!(batch.requests.len(), 1, "budget cuts after the head");
        assert_eq!(q.depth(), 1);
    }

    #[test]
    fn plan_cache_serves_repeat_batches_without_resweep() {
        let params = CkksParams::test_tiny();
        let dev = DeviceModel::a100();
        let store = Arc::new(PlanStore::new());
        let cfg = AdmissionConfig {
            plan_store: Some(Arc::clone(&store)),
            ..AdmissionConfig::default()
        };
        let mut q = AdmissionQueue::new(cfg);
        q.try_enqueue(req(0, 1, 50.0, 3, 2)).expect("enqueue");
        let first = q.coalesce(&params, &dev).expect("batch");
        assert_eq!(store.misses(), 1, "first batch sweeps and caches");
        assert_eq!(store.len(), 1);

        // An identically-shaped batch must be served from the cache.
        q.try_enqueue(req(1, 1, 50.0, 3, 2)).expect("enqueue");
        let second = q.coalesce(&params, &dev).expect("batch");
        assert_eq!(store.hits(), 1, "repeat shape hits the cache");
        assert_eq!(second.streams, first.streams);
        assert!(
            (second.est_makespan.as_secs_f64() - first.est_makespan.as_secs_f64()).abs() < 1e-9,
            "cached estimate must round-trip"
        );

        // A differently-shaped batch (more ops) must miss and re-sweep.
        q.try_enqueue(req(2, 1, 50.0, 3, 4)).expect("enqueue");
        q.coalesce(&params, &dev).expect("batch");
        assert_eq!(store.misses(), 2, "perturbed shape misses");
        assert_eq!(store.len(), 2);
    }

    #[test]
    fn op_cap_cuts_batch() {
        let params = CkksParams::test_tiny();
        let dev = DeviceModel::a100();
        let cfg = AdmissionConfig {
            max_batch_ops: 5,
            ..AdmissionConfig::default()
        };
        let mut q = AdmissionQueue::new(cfg);
        q.try_enqueue(req(0, 1, 50.0, 3, 3)).expect("enqueue");
        q.try_enqueue(req(1, 2, 50.0, 3, 3)).expect("enqueue");
        let batch = q.coalesce(&params, &dev).expect("batch");
        assert_eq!(batch.requests.len(), 1, "3 + 3 > 5");
        assert_eq!(batch.total_ops, 3);
    }
}
