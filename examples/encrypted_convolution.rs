//! Encrypted image convolution: apply a Sobel edge filter to an encrypted
//! 8×16 image — the per-layer primitive behind the paper's ResNet
//! workload, lowered onto slot rotations + plaintext multiplications.
//!
//! Run with: `cargo run --release --example encrypted_convolution`

use neo::apps::conv::Conv2d;
use neo::ckks::keys::{KeyChest, PublicKey, SecretKey};
use neo::ckks::{ops, CkksContext, CkksParams, Encoder, KsMethod};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::Arc;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let ctx = Arc::new(CkksContext::new(CkksParams::test_tiny())?);
    let mut rng = StdRng::seed_from_u64(2026);
    let sk = SecretKey::generate(&ctx, &mut rng);
    let pk = PublicKey::generate(&ctx, &sk, &mut rng);
    let chest = KeyChest::new(ctx.clone(), sk, 1);
    let enc = Encoder::new(ctx.degree());

    // A vertical-edge test pattern: left half dark, right half bright.
    let (h, w) = (8usize, 16usize);
    let image: Vec<f64> = (0..h * w)
        .map(|i| if (i % w) < w / 2 { 0.1 } else { 0.9 })
        .collect();
    let sobel = [[-1.0, 0.0, 1.0], [-2.0, 0.0, 2.0], [-1.0, 0.0, 1.0]];
    let conv = Conv2d::new(h, w, sobel);
    println!(
        "convolving an encrypted {h}x{w} image with a 3x3 Sobel kernel\n\
         ({} slot rotations via the linear-transform lowering)\n",
        conv.to_linear_transform().diagonal_count()
    );

    let pt = enc.encode(&ctx, &conv.pack(&image), ctx.params().scale(), 3);
    let ct = ops::try_encrypt(&ctx, &pk, &pt, &mut rng)?;
    let out_ct = conv.apply(&chest, &enc, &ct, KsMethod::Klss)?;
    let got = enc.decode(&ctx, &ops::try_decrypt(&ctx, chest.secret_key(), &out_ct)?);
    let want = conv.apply_plain(&image);

    // Show the middle row: the filter must fire exactly at the edge.
    let row = 4;
    println!("col | encrypted | plaintext");
    for x in 0..w {
        let i = row * w + x;
        println!("{x:3} | {:+9.4} | {:+9.4}", got[i].re, want[i]);
    }
    let max_err = (0..h * w)
        .map(|i| (got[i].re - want[i]).abs())
        .fold(0.0, f64::max);
    println!("\nmax error across all pixels: {max_err:.2e}");
    Ok(())
}
