//! Explore the A100 performance model: per-operation times across levels
//! and schemes, application projections, and what-if questions (e.g. "how
//! much does the FP64 TCU mapping buy at my parameters?").
//!
//! Run with: `cargo run --release --example performance_model`

use neo::apps::AppKind;
use neo::baselines::SchemeModel;
use neo::ckks::cost::{op_time_us, CostConfig, Operation};
use neo::ckks::ParamSet;
use neo::gpu_sim::DeviceModel;
use neo::kernels::MatmulTarget;

fn main() {
    let dev = DeviceModel::a100();
    println!("== HMult time vs level (us per ciphertext, batch-amortized) ==");
    println!("level |  TensorFHE-A |  HEonGPU-E |    Neo-C");
    let (tf, he, neo) = (
        SchemeModel::tensorfhe(ParamSet::A),
        SchemeModel::heongpu(),
        SchemeModel::neo(ParamSet::C),
    );
    for l in (5..=35).step_by(5) {
        println!(
            "  {l:3} | {:12.0} | {:10.0} | {:8.0}",
            tf.op_time_us(l, Operation::HMult),
            he.op_time_us(l, Operation::HMult),
            neo.op_time_us(l, Operation::HMult),
        );
    }

    println!("\n== What-if: Neo with its matmuls forced onto other components ==");
    let p = ParamSet::C.params();
    for (label, target) in [
        ("CUDA cores ", MatmulTarget::Cuda),
        ("TCU INT8   ", MatmulTarget::TcuInt8),
        ("TCU FP64   ", MatmulTarget::TcuFp64),
    ] {
        let mut cfg = CostConfig::neo();
        cfg.ntt_target = target;
        cfg.bconv_target = target;
        cfg.ip_adaptive = false;
        cfg.ip_target = MatmulTarget::Cuda; // IP validity < 80% at l=35
        let t = op_time_us(&dev, &p, 35, Operation::HMult, &cfg);
        println!("  matmuls on {label}: HMult = {t:7.0} us");
    }

    println!("\n== Application projections (seconds) ==");
    for app in AppKind::ALL {
        println!(
            "  {:>13}: TensorFHE-A {:8.2}  HEonGPU {:8.2}  Neo-C {:8.2}",
            app.to_string(),
            tf.app_time_s(app),
            he.app_time_s(app),
            neo.app_time_s(app),
        );
    }
}
