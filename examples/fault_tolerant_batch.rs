//! Fault-tolerant batch execution end to end: arm a deterministic fault
//! plan, run a batch under an always-verifying engine, and watch the
//! stack recover — transient op faults retried bit-identically, a
//! poisoned NTT-plan cache entry quarantined and rebuilt, an op with an
//! exhausted retry budget isolated while the clean subset completes.
//! Finishes by measuring what the ABFT checksums actually cost, using the
//! same work counters the A100 cost model prices.
//!
//! Run with: `cargo run --release --example fault_tolerant_batch`

use neo::fault::{FaultPlan, FaultScope, FaultSite, FaultSpec};
use neo::prelude::*;
use neo::trace::Counter;
use std::sync::Arc;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // An engine that verifies every eligible operation: GEMM checksums in
    // the TCU path, NTT spot checks after every transform. Use
    // `VerifyPolicy::Sampled(n)` to amortize the cost 1-in-n in
    // production.
    let engine = FheEngine::new(CkksParams::test_tiny(), 42)?.with_policy(OpPolicy {
        verify: VerifyPolicy::Always,
        ..OpPolicy::default()
    });

    // A small program with an independent op: HMult -> Rescale, plus an
    // HAdd that shares no intermediate state with the chain.
    let mut prog = BatchProgram::new();
    let product = prog.try_push(BatchOp::HMult(Slot::Input(0), Slot::Input(1)))?;
    prog.try_push(BatchOp::Rescale(product))?;
    prog.try_push(BatchOp::HAdd(Slot::Input(0), Slot::Input(1)))?;

    let a = engine.encrypt_f64(&[1.5, -0.5, 2.0], engine.max_level())?;
    let b = engine.encrypt_f64(&[0.5, 3.0, -1.0], engine.max_level())?;
    let inputs = vec![a, b];

    // Fault-free baseline for bit-identity comparisons.
    let clean: Vec<Ciphertext> = engine
        .execute_batch(&prog, &inputs, false)?
        .into_iter()
        .collect::<Result<_, _>>()?;

    // --- 1. A transient op fault is retried bit-identically -----------
    let plan = Arc::new(FaultPlan::new(7).with_site(FaultSite::CkksOp, FaultSpec::once()));
    let scope = FaultScope::install(plan.clone());
    let report = engine.execute_batch_with_report(&prog, &inputs, false, 2)?;
    drop(scope);
    let recovered: Vec<Ciphertext> = report.results.into_iter().collect::<Result<_, _>>()?;
    assert_eq!(recovered, clean);
    println!(
        "transient fault: {} injected, {} retries, {} recovered -> all outputs bit-identical",
        plan.injected(FaultSite::CkksOp),
        report.retries_attempted.iter().sum::<u32>(),
        report.faults_recovered.iter().sum::<u32>(),
    );

    // --- 2. A poisoned NTT plan is quarantined and rebuilt -------------
    let plan = Arc::new(FaultPlan::new(31).with_site(FaultSite::NttPlan, FaultSpec::once()));
    let scope = FaultScope::install(plan.clone());
    let report = engine.execute_batch_with_report(&prog, &inputs, false, 2)?;
    drop(scope);
    let recovered: Vec<Ciphertext> = report.results.into_iter().collect::<Result<_, _>>()?;
    assert_eq!(recovered, clean);
    println!(
        "poisoned plan: integrity token tripped, {} cache entr{} quarantined, rebuilt, recovered bit-identically",
        report.plans_quarantined,
        if report.plans_quarantined == 1 { "y" } else { "ies" },
    );

    // --- 3. Exhausted retries isolate the op; clean subset completes ---
    let plan =
        Arc::new(FaultPlan::new(23).with_site(FaultSite::CkksOp, FaultSpec::always().max_fires(2)));
    let scope = FaultScope::install(plan.clone());
    let report = engine.execute_batch_with_report(&prog, &inputs, false, 1)?;
    drop(scope);
    for (i, r) in report.results.iter().enumerate() {
        match r {
            Ok(ct) => println!(
                "  op {i}: ok, bit-identical to clean run: {}",
                ct == &clean[i]
            ),
            Err(e) => println!("  op {i}: {:?} ({e})", e.kind()),
        }
    }

    // --- 4. What does verification cost? -------------------------------
    let off = FheEngine::new(CkksParams::test_tiny(), 42)?;
    let (_, w_off) = neo::trace::record(|| off.execute_batch(&prog, &inputs, false));
    let (_, w_on) = neo::trace::record(|| engine.execute_batch(&prog, &inputs, false));
    let base = neo::gpu_sim::KernelProfile::from_counters("off", &w_off).cuda_modmacs;
    let verified = neo::gpu_sim::KernelProfile::from_counters("on", &w_on).cuda_modmacs;
    println!(
        "\nABFT overhead: {} checks, {} checksum MACs = {:.2}% extra CUDA work \
         (VerifyPolicy::Sampled(100) would pay ~{:.3}%)",
        w_on.get(Counter::AbftChecks),
        w_on.get(Counter::AbftMacs),
        100.0 * (verified - base) / base,
        (verified - base) / base,
    );
    Ok(())
}
