//! The serving layer end to end: register tenants with their own keys and
//! policies over one shared CKKS context, submit concurrent requests, let
//! sim-priced admission coalesce them into multi-stream batches, and watch
//! backpressure shed a tenant that outruns its budget.
//!
//! Run with: `cargo run --release --example serve_tenants`

use neo::prelude::*;
use neo::serve::{NeoService, ServeConfig, ServiceCore, TenantConfig, TenantRegistry};
use std::sync::Arc;

/// `2x²`, homomorphically: HMult → Rescale → HAdd (the operands of the
/// add are both the rescaled square, keeping every op level-consistent).
fn double_square() -> Result<BatchProgram, NeoError> {
    let mut p = BatchProgram::new();
    let sq = p.try_push(BatchOp::HMult(Slot::Input(0), Slot::Input(0)))?;
    let rs = p.try_push(BatchOp::Rescale(sq))?;
    p.try_push(BatchOp::HAdd(rs, rs))?;
    Ok(p)
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // --- 1. One shared context, many tenants --------------------------
    // The registry owns the expensive parameter state (prime chains, NTT
    // plans, BConv tables); each registered tenant gets its own keys and
    // its own operational policy on top of it.
    let registry = Arc::new(TenantRegistry::new(CkksParams::test_tiny())?);
    for id in 0..4u64 {
        registry.register(
            id,
            1000 + id, // per-tenant key seed
            TenantConfig {
                policy: OpPolicy {
                    verify: VerifyPolicy::Always,
                    ..OpPolicy::default()
                },
                ..TenantConfig::default()
            },
        )?;
    }
    println!(
        "registered {} tenants over one shared context",
        registry.len()
    );

    // --- 2. Deterministic serving with ServiceCore --------------------
    let mut core = ServiceCore::new(Arc::clone(&registry), ServeConfig::default());
    let inputs: Vec<f64> = vec![0.5, -0.25, 1.5, 0.75];
    for (id, &x) in inputs.iter().enumerate() {
        let session = registry.get(id as u64).expect("registered above");
        let ct = session.engine().encrypt_f64(&[x], 3)?;
        core.submit(id as u64, double_square()?, vec![ct])?;
    }
    // All four requests were queued concurrently — one drain coalesces
    // them into a single sim-priced multi-stream batch.
    let responses = core.run_until_idle();
    for resp in &responses {
        let session = registry.get(resp.tenant).expect("registered above");
        let results = resp.outcome.as_ref().map_err(Clone::clone)?;
        let last = results.last().expect("program has ops");
        let y = session
            .engine()
            .decrypt_f64(last.as_ref().map_err(Clone::clone)?)?;
        let x = inputs[resp.tenant as usize];
        println!(
            "tenant {}: x={x:+.2} -> 2x² = {:+.4} (expected {:+.4}; batch of {} on {} streams)",
            resp.tenant,
            y[0],
            2.0 * x * x,
            resp.batch_requests,
            resp.streams,
        );
    }
    let stats = core.stats();
    println!(
        "coalescing factor {:.1} over {} batch(es), {} shed",
        stats.coalescing_factor(),
        stats.batches,
        stats.shed_total()
    );

    // --- 3. Backpressure is typed, and per tenant ----------------------
    let mut tight = ServeConfig::default();
    tight.admission.max_queue_depth = 2;
    let mut small = ServiceCore::new(Arc::clone(&registry), tight);
    let session = registry.get(0).expect("registered above");
    let ct = session.engine().encrypt_f64(&[0.1], 3)?;
    for _ in 0..2 {
        small.submit(0, double_square()?, vec![ct.clone()])?;
    }
    match small.submit(0, double_square()?, vec![ct]) {
        Err(NeoError::Overloaded { what, .. }) => {
            println!("third concurrent request shed: Overloaded({what}) — client should back off")
        }
        other => println!("unexpected: {other:?}"),
    }
    small.run_until_idle();

    // --- 4. The threaded front-end -------------------------------------
    // NeoService runs the same loop on a worker thread behind a bounded
    // channel; submissions return handles that block until served.
    let service = NeoService::spawn(Arc::clone(&registry), ServeConfig::default());
    let mut handles = Vec::new();
    for id in 0..4u64 {
        let session = registry.get(id).expect("registered above");
        let ct = session
            .engine()
            .encrypt_f64(&[0.25 * (id as f64 + 1.0)], 3)?;
        handles.push(service.submit(id, double_square()?, vec![ct])?);
    }
    for h in handles {
        let resp = h.wait()?;
        println!(
            "async tenant {}: served in a batch of {} ({} retried, {} recovered)",
            resp.tenant, resp.batch_requests, resp.retries, resp.faults_recovered
        );
    }
    let final_stats = service.shutdown();
    println!(
        "service shutdown: {} submitted, {} completed, {} shed",
        final_stats.submitted,
        final_stats.completed,
        final_stats.shed_total()
    );
    Ok(())
}
