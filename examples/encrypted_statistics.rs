//! Encrypted descriptive statistics: mean and variance of a packed data
//! vector via rotate-and-sum — the rotation-heavy access pattern that
//! makes HROTATE (and therefore KeySwitch) performance-critical.
//!
//! Run with: `cargo run --release --example encrypted_statistics`

use neo::ckks::encoding::Complex64;
use neo::ckks::keys::{KeyChest, PublicKey, SecretKey};
use neo::ckks::{ops, CkksContext, CkksParams, Encoder, KsMethod};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::Arc;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let ctx = Arc::new(CkksContext::new(CkksParams::test_small())?);
    let mut rng = StdRng::seed_from_u64(7);
    let sk = SecretKey::generate(&ctx, &mut rng);
    let pk = PublicKey::generate(&ctx, &sk, &mut rng);
    let chest = KeyChest::new(ctx.clone(), sk, 8);
    let enc = Encoder::new(ctx.degree());
    let slots = enc.slots();

    // A full ciphertext of samples.
    let data: Vec<f64> = (0..slots).map(|_| rng.gen_range(-1.0..1.0)).collect();
    let packed: Vec<Complex64> = data.iter().map(|&v| Complex64::new(v, 0.0)).collect();
    let scale = ctx.params().scale();
    let ct = ops::encrypt(&ctx, &pk, &enc.encode(&ctx, &packed, scale, 4), &mut rng);

    // mean = rotate-sum(x) / n  (the division folds into a plaintext mult).
    let mut sum = ct.clone();
    let mut step = 1usize;
    while step < slots {
        let rot = ops::hrotate(&chest, &sum, step, KsMethod::Klss);
        sum = ops::hadd(&ctx, &sum, &rot);
        step *= 2;
    }
    let inv_n = enc.encode(
        &ctx,
        &vec![Complex64::new(1.0 / slots as f64, 0.0); slots],
        scale,
        sum.level(),
    );
    let mean_ct = ops::rescale(&ctx, &ops::pmult(&ctx, &sum, &inv_n));

    // variance = mean(x²) - mean(x)²; compute E[x²] the same way.
    let sq = ops::rescale(&ctx, &ops::hmult(&chest, &ct, &ct, KsMethod::Klss));
    let mut sum_sq = sq;
    let mut step = 1usize;
    while step < slots {
        let rot = ops::hrotate(&chest, &sum_sq, step, KsMethod::Klss);
        sum_sq = ops::hadd(&ctx, &sum_sq, &rot);
        step *= 2;
    }
    let inv_n2 = enc.encode(
        &ctx,
        &vec![Complex64::new(1.0 / slots as f64, 0.0); slots],
        scale,
        sum_sq.level(),
    );
    let mean_sq_ct = ops::rescale(&ctx, &ops::pmult(&ctx, &sum_sq, &inv_n2));

    // Decrypt and combine (the final subtraction is done in the clear to
    // keep this example within the toy modulus chain's depth).
    let mean = enc.decode(&ctx, &ops::decrypt(&ctx, chest.secret_key(), &mean_ct))[0].re;
    let mean_sq = enc.decode(&ctx, &ops::decrypt(&ctx, chest.secret_key(), &mean_sq_ct))[0].re;
    let var = mean_sq - mean * mean;

    let true_mean = data.iter().sum::<f64>() / slots as f64;
    let true_var = data
        .iter()
        .map(|v| (v - true_mean) * (v - true_mean))
        .sum::<f64>()
        / slots as f64;

    println!("{} samples packed into one ciphertext", slots);
    println!("mean:     encrypted {mean:+.6}, plaintext {true_mean:+.6}");
    println!("variance: encrypted {var:+.6}, plaintext {true_var:+.6}");
    println!(
        "errors:   {:.2e} / {:.2e}",
        (mean - true_mean).abs(),
        (var - true_var).abs()
    );
    Ok(())
}
