//! Encrypted descriptive statistics: mean and variance of a packed data
//! vector via rotate-and-sum — the rotation-heavy access pattern that
//! makes HROTATE (and therefore KeySwitch) performance-critical. Runs
//! entirely on the fallible [`FheEngine`] API.
//!
//! Run with: `cargo run --release --example encrypted_statistics`

use neo::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn main() -> Result<(), NeoError> {
    let engine = FheEngine::new(CkksParams::test_small(), 7)?;
    let slots = engine.slots();
    let mut rng = StdRng::seed_from_u64(7);

    // A full ciphertext of samples.
    let data: Vec<f64> = (0..slots).map(|_| rng.gen_range(-1.0..1.0)).collect();
    let ct = engine.encrypt_f64(&data, 4)?;

    // mean = rotate-sum(x) / n  (the division folds into a plaintext mult).
    let mut sum = ct.clone();
    let mut step = 1usize;
    while step < slots {
        let rot = engine.hrotate(&sum, step)?;
        sum = engine.hadd(&sum, &rot)?;
        step *= 2;
    }
    let inv_n = engine.encode_f64(&vec![1.0 / slots as f64; slots], sum.level())?;
    let mean_ct = engine.rescale(&engine.pmult(&sum, &inv_n)?)?;

    // variance = mean(x²) - mean(x)²; compute E[x²] the same way.
    let sq = engine.rescale(&engine.hmult(&ct, &ct)?)?;
    let mut sum_sq = sq;
    let mut step = 1usize;
    while step < slots {
        let rot = engine.hrotate(&sum_sq, step)?;
        sum_sq = engine.hadd(&sum_sq, &rot)?;
        step *= 2;
    }
    let inv_n2 = engine.encode_f64(&vec![1.0 / slots as f64; slots], sum_sq.level())?;
    let mean_sq_ct = engine.rescale(&engine.pmult(&sum_sq, &inv_n2)?)?;

    // Decrypt and combine (the final subtraction is done in the clear to
    // keep this example within the toy modulus chain's depth).
    let mean = engine.decrypt_f64(&mean_ct)?[0];
    let mean_sq = engine.decrypt_f64(&mean_sq_ct)?[0];
    let var = mean_sq - mean * mean;

    let true_mean = data.iter().sum::<f64>() / slots as f64;
    let true_var = data
        .iter()
        .map(|v| (v - true_mean) * (v - true_mean))
        .sum::<f64>()
        / slots as f64;

    println!("{} samples packed into one ciphertext", slots);
    println!("mean:     encrypted {mean:+.6}, plaintext {true_mean:+.6}");
    println!("variance: encrypted {var:+.6}, plaintext {true_var:+.6}");
    println!(
        "errors:   {:.2e} / {:.2e}",
        (mean - true_mean).abs(),
        (var - true_var).abs()
    );
    Ok(())
}
