//! HELR in miniature: train a logistic-regression classifier on
//! *encrypted* synthetic data, homomorphically, and compare against the
//! plaintext reference model (the paper's HELR workload, Section 5).
//!
//! Run with: `cargo run --release --example encrypted_logistic_regression`

use neo::apps::helr::{plaintext_step, synthetic_dataset, EncryptedLogisticRegression};
use neo::ckks::keys::{KeyChest, PublicKey, SecretKey};
use neo::ckks::{CkksContext, CkksParams, KsMethod};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::Arc;

const FEATURES: usize = 8;
const SAMPLES: usize = 16;
const STEPS: usize = 3;
const LR: f64 = 0.08;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let ctx = Arc::new(CkksContext::new(CkksParams::test_tiny())?);
    let mut rng = StdRng::seed_from_u64(99);
    let sk = SecretKey::generate(&ctx, &mut rng);
    let pk = PublicKey::generate(&ctx, &sk, &mut rng);
    let chest = KeyChest::new(ctx.clone(), sk, 100);
    let model = EncryptedLogisticRegression::new(ctx.clone(), FEATURES, SAMPLES, KsMethod::Klss);

    let (xs, ys) = synthetic_dataset(&mut rng, SAMPLES, FEATURES);
    println!("training on {SAMPLES} encrypted samples x {FEATURES} features, lr = {LR}\n");

    let mut w_enc = vec![0.0f64; FEATURES];
    let mut w_ref = vec![0.0f64; FEATURES];
    for step in 0..STEPS {
        // Each gradient step consumes 4 levels; the tiny chain re-encrypts
        // between steps where full-size parameters would bootstrap.
        let level = ctx.params().max_level;
        let x_ct = model.encrypt_data(&pk, &xs, level, &mut rng)?;
        let w_ct = model.encrypt_weights(&pk, &w_enc, level, &mut rng)?;
        let w_next = model.step(&chest, &x_ct, &ys, &w_ct, LR)?;
        w_enc = model.decrypt_weights(chest.secret_key(), &w_next)?;
        w_ref = plaintext_step(&xs, &ys, &w_ref, LR);
        let drift: f64 = w_enc
            .iter()
            .zip(&w_ref)
            .map(|(a, b)| (a - b).abs())
            .fold(0.0, f64::max);
        println!("step {step}: max |encrypted - plaintext| weight drift = {drift:.4}");
    }

    let accuracy = |w: &[f64]| -> f64 {
        let correct = xs
            .iter()
            .zip(&ys)
            .filter(|(x, &y)| {
                let z: f64 = x.iter().zip(w).map(|(a, b)| a * b).sum();
                (z > 0.0) == (y > 0.5)
            })
            .count();
        correct as f64 / SAMPLES as f64
    };
    println!(
        "\nfinal weights (encrypted path): {:?}",
        &w_enc[..4.min(FEATURES)]
    );
    println!(
        "training accuracy: encrypted {:.0}%, plaintext {:.0}%",
        accuracy(&w_enc) * 100.0,
        accuracy(&w_ref) * 100.0
    );
    Ok(())
}
