//! Multi-stream scheduling end to end: build the kernel DAG of a batch of
//! KLSS HMults, simulate it on 1..4 A100 streams with the `neo-sched`
//! discrete-event simulator, then *execute* the same kind of batch on real
//! ciphertexts with the rayon wavefront executor and verify the parallel
//! result is bit-identical to serial.
//!
//! Run with: `cargo run --release --example multi_stream_batch`

use neo::ckks::batch::{BatchOp, BatchProgram, Slot};
use neo::ckks::cost::{CostConfig, Operation};
use neo::ckks::encoding::Complex64;
use neo::ckks::keys::{KeyChest, PublicKey, SecretKey};
use neo::ckks::sched::batch_op_graph;
use neo::ckks::{ops, CkksContext, CkksParams, Encoder, KsMethod, ParamSet};
use neo::gpu_sim::DeviceModel;
use neo::sched::simulate_best;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::Arc;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // --- 1. Simulate: how much does multi-stream overlap buy? ---------
    let dev = DeviceModel::a100();
    let p = ParamSet::C.params();
    let cfg = CostConfig::neo();
    let copies = 4;
    let g = batch_op_graph(&p, 35, Operation::HMult, &cfg, copies);
    let (fused, stats) = g.fuse_elementwise();
    println!(
        "kernel DAG of {copies} independent KLSS HMults: {} kernels ({} after fusion, {:.0} -> {:.0} launches)",
        g.len(),
        fused.len(),
        stats.launches_before,
        stats.launches_after
    );
    let serial = simulate_best(&fused, &dev, 1);
    for streams in [2, 4] {
        let s = simulate_best(&fused, &dev, streams);
        println!(
            "  up to {streams} streams: {:.1} ms ({:.2}x vs 1 stream)",
            s.makespan_s * 1e3,
            serial.makespan_s / s.makespan_s
        );
    }

    // --- 2. Execute: the same batch shape on real ciphertexts ---------
    let ctx = Arc::new(CkksContext::new(CkksParams::test_tiny())?);
    let mut rng = StdRng::seed_from_u64(7);
    let sk = SecretKey::generate(&ctx, &mut rng);
    let pk = PublicKey::generate(&ctx, &sk, &mut rng);
    let chest = KeyChest::new(ctx.clone(), sk, 8);
    let enc = Encoder::new(ctx.degree());
    let level = ctx.params().max_level;
    let inputs: Vec<_> = (0..copies)
        .map(|i| {
            let vals: Vec<Complex64> = (0..enc.slots())
                .map(|j| Complex64::new(0.3 * ((i + j) as f64 * 0.4).cos(), 0.0))
                .collect();
            let pt = enc.encode(&ctx, &vals, ctx.params().scale(), level);
            ops::try_encrypt(&ctx, &pk, &pt, &mut rng)
        })
        .collect::<Result<_, _>>()?;

    // Square each input and rescale — four independent 2-op pipelines the
    // wavefront executor runs concurrently.
    let mut prog = BatchProgram::new();
    for i in 0..copies {
        let sq = prog.try_push(BatchOp::HMult(Slot::Input(i), Slot::Input(i)))?;
        prog.try_push(BatchOp::Rescale(sq))?;
    }
    let serial_out = prog.execute(&chest, &inputs, KsMethod::Klss, false)?;
    let parallel_out = prog.execute(&chest, &inputs, KsMethod::Klss, true)?;
    assert_eq!(serial_out, parallel_out);
    println!(
        "\nexecuted {} ops over {copies} ciphertexts on the rayon pool: parallel == serial (bit-identical)",
        prog.ops.len()
    );

    // Decode one output to show the math still works.
    let squared = parallel_out[1].as_ref().map_err(Clone::clone)?;
    let dec = enc.decode(&ctx, &ops::try_decrypt(&ctx, chest.secret_key(), squared)?);
    let expect = 0.3 * 0.4f64.cos();
    println!(
        "input[0] squared, slot 1: {:.4} (expected {:.4})",
        dec[1].re,
        expect * expect
    );
    Ok(())
}
