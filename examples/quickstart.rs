//! Quickstart: encrypt a vector of complex numbers, compute
//! `(x + y)·x` homomorphically with the KLSS key switch, and decrypt.
//!
//! Run with: `cargo run --release --example quickstart`

use neo::ckks::encoding::Complex64;
use neo::ckks::keys::{KeyChest, PublicKey, SecretKey};
use neo::ckks::{ops, CkksContext, CkksParams, Encoder, KsMethod};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::Arc;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Reduced-degree parameters (N = 2^10, L = 5) so the example runs in
    // moments; ParamSet::C gives the paper's full-size N = 2^16 setup.
    let ctx = Arc::new(CkksContext::new(CkksParams::test_small())?);
    let mut rng = StdRng::seed_from_u64(2025);
    let sk = SecretKey::generate(&ctx, &mut rng);
    let pk = PublicKey::generate(&ctx, &sk, &mut rng);
    let chest = KeyChest::new(ctx.clone(), sk, 7);
    let enc = Encoder::new(ctx.degree());

    println!("ring degree N = {}, slots = {}", ctx.degree(), enc.slots());
    println!(
        "modulus chain: {} data primes + {} special primes",
        ctx.q_primes().len(),
        ctx.p_primes().len()
    );
    println!(
        "KLSS auxiliary basis: {} primes of 48 bits\n",
        ctx.t_primes().len()
    );

    // Pack two small vectors into slots.
    let x: Vec<Complex64> = (0..8)
        .map(|i| Complex64::new(i as f64 * 0.1, 0.0))
        .collect();
    let y: Vec<Complex64> = (0..8)
        .map(|i| Complex64::new(1.0 - i as f64 * 0.05, 0.0))
        .collect();
    let scale = ctx.params().scale();
    let level = 3;
    let ct_x = ops::encrypt(&ctx, &pk, &enc.encode(&ctx, &x, scale, level), &mut rng);
    let ct_y = ops::encrypt(&ctx, &pk, &enc.encode(&ctx, &y, scale, level), &mut rng);

    // (x + y) * x, then rescale.
    let sum = ops::hadd(&ctx, &ct_x, &ct_y);
    let prod = ops::rescale(&ctx, &ops::hmult(&chest, &sum, &ct_x, KsMethod::Klss));

    let out = enc.decode(&ctx, &ops::decrypt(&ctx, chest.secret_key(), &prod));
    println!("slot | (x+y)*x expected | decrypted      | error");
    for i in 0..8 {
        let want = (x[i] + y[i]) * x[i];
        let err = (out[i] - want).abs();
        println!(
            "  {i}  | {:+.6}        | {:+.6}      | {err:.2e}",
            want.re, out[i].re
        );
    }
    println!(
        "\nciphertext level after multiply+rescale: {}",
        prod.level()
    );
    Ok(())
}
