//! Quickstart: encrypt a vector of complex numbers, compute
//! `(x + y)·x` homomorphically with the KLSS key switch, and decrypt —
//! all through the [`FheEngine`] session facade, whose operations return
//! `Result<_, NeoError>` instead of panicking.
//!
//! Run with: `cargo run --release --example quickstart`

use neo::prelude::*;

fn main() -> Result<(), NeoError> {
    // Reduced-degree parameters (N = 2^10, L = 5) so the example runs in
    // moments; ParamSet::C gives the paper's full-size N = 2^16 setup.
    let engine = FheEngine::new(CkksParams::test_small(), 2025)?;
    let ctx = engine.context();

    println!(
        "ring degree N = {}, slots = {}",
        ctx.degree(),
        engine.slots()
    );
    println!(
        "modulus chain: {} data primes + {} special primes",
        ctx.q_primes().len(),
        ctx.p_primes().len()
    );
    println!(
        "KLSS auxiliary basis: {} primes of 48 bits",
        ctx.t_primes().len()
    );
    println!("key switch: {:?}\n", engine.method());

    // Pack two small vectors into slots.
    let x: Vec<Complex64> = (0..8)
        .map(|i| Complex64::new(i as f64 * 0.1, 0.0))
        .collect();
    let y: Vec<Complex64> = (0..8)
        .map(|i| Complex64::new(1.0 - i as f64 * 0.05, 0.0))
        .collect();
    let level = 3;
    let ct_x = engine.encrypt_values(&x, level)?;
    let ct_y = engine.encrypt_values(&y, level)?;

    // (x + y) * x, then rescale.
    let sum = engine.hadd(&ct_x, &ct_y)?;
    let prod = engine.rescale(&engine.hmult(&sum, &ct_x)?)?;

    let out = engine.decrypt_values(&prod)?;
    println!("slot | (x+y)*x expected | decrypted      | error");
    for i in 0..8 {
        let want = (x[i] + y[i]) * x[i];
        let err = (out[i] - want).abs();
        println!(
            "  {i}  | {:+.6}        | {:+.6}      | {err:.2e}",
            want.re, out[i].re
        );
    }
    println!(
        "\nciphertext level after multiply+rescale: {} ({:.1} noise-budget bits left)",
        prod.level(),
        engine.noise_budget_bits(&prod)
    );
    Ok(())
}
