//! Metrics quick-start: run a small encrypted batch with the metrics
//! gate on, then read per-op latency/noise histograms out of one
//! registry snapshot and export it as Prometheus text and JSON.
//!
//! Run with: `cargo run --release --example metrics_snapshot`

use neo::ckks::batch::{BatchOp, BatchProgram, Slot};
use neo::prelude::*;

fn main() -> Result<(), NeoError> {
    // Metrics are off by default (every instrumented site costs one
    // relaxed atomic load). Turn the gate on for the monitored section.
    neo::metrics::enable();

    let engine = FheEngine::new(CkksParams::test_small(), 2025)?;
    let x = engine.encrypt_f64(&[0.5, 0.25, 0.125], 3)?;
    let y = engine.encrypt_f64(&[0.1, 0.2, 0.3], 3)?;

    // (x·y rescaled, then rotated and accumulated) as a batch program.
    let mut prog = BatchProgram::new();
    let m = prog.try_push(BatchOp::HMult(Slot::Input(0), Slot::Input(1)))?;
    let r = prog.try_push(BatchOp::Rescale(m))?;
    let rot = prog.try_push(BatchOp::HRotate(r, 1))?;
    prog.try_push(BatchOp::HAdd(r, rot))?;
    let report = engine.execute_batch_with_report(&prog, &[x, y], true, 2)?;
    println!(
        "batch: {} ops, {} retries, {} faults recovered\n",
        report.results.len(),
        report.retries_attempted.iter().sum::<u32>(),
        report.faults_recovered.iter().sum::<u32>()
    );

    neo::metrics::disable();

    // One snapshot captures every series at one instant.
    let snap = neo::metrics::registry().snapshot();
    for op in ["hmult", "rescale", "hrotate", "hadd"] {
        if let Some(lat) = snap.histogram("fhe_op_latency_ns", &[("op", op)]) {
            println!(
                "{op:8} n={:3}  p50={:>9} ns  p95={:>9} ns  p99={:>9} ns  max={:>9} ns",
                lat.count,
                lat.p50(),
                lat.p95(),
                lat.p99(),
                lat.max
            );
        }
        if let Some(noise) = snap.histogram("fhe_noise_consumed_bits", &[("op", op)]) {
            println!(
                "{op:8} noise consumed: p50={} bits, max={} bits",
                noise.p50(),
                noise.max
            );
        }
    }

    // Exporters: Prometheus text exposition and a JSON document.
    println!("\n--- prometheus text (excerpt) ---");
    let prom = neo::metrics::export::prometheus_text(&snap);
    for line in prom.lines().filter(|l| l.contains("fhe_batch")) {
        println!("{line}");
    }
    let json = neo::metrics::export::json(&snap);
    println!(
        "\nJSON export: {} bytes (parse it back with neo::metrics::jsonv)",
        json.len()
    );
    Ok(())
}
