//! Crash-recovery properties of the persistent store.
//!
//! Proptest drives arbitrary damage — a truncation at a random offset,
//! or a bit flip at a random (offset, bit) — into a committed store
//! file and asserts the recover-or-quarantine contract on the next
//! open: every record a damaged store *serves* is bit-identical to what
//! was written; everything else is classified as recoverable (KSK
//! kinds) or quarantined, and accounted for in the recovery report.
//! An end-to-end case damages a real persisted FHE session and proves
//! the warm start still decrypts correctly or refuses typed.

use neo::ckks::{CkksContext, CkksParams, FheEngine, KeyTarget};
use neo::store::{RecordId, RecordKind, RecordStatus, SessionStore, Store};
use proptest::prelude::*;
use proptest::test_runner::TestCaseError;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Unique temp path per case so parallel proptest shrink runs never
/// collide on one file.
fn case_path(tag: &str) -> PathBuf {
    static N: AtomicU64 = AtomicU64::new(0);
    let mut p = std::env::temp_dir();
    p.push(format!(
        "neo-store-prop-{tag}-{}-{}.neostore",
        std::process::id(),
        N.fetch_add(1, Ordering::Relaxed)
    ));
    p
}

/// Commits a deterministic mixed-kind record set and returns the path,
/// the clean file image, and the expected payload per id.
type Fixture = (PathBuf, Vec<u8>, Vec<(RecordId, Vec<u8>)>);

fn committed_fixture(seed: u64, tag: &str) -> Fixture {
    let path = case_path(tag);
    let mut store = Store::open(&path).unwrap();
    let mut clean = Vec::new();
    for (i, kind) in [
        RecordKind::SecretKey,
        RecordKind::HybridKsk,
        RecordKind::ExecPlan,
        RecordKind::Ciphertext,
    ]
    .into_iter()
    .enumerate()
    {
        let h = neo::fault::splitmix64(seed ^ ((i as u64 + 1) << 20));
        let len = 16 + (h % 200) as usize;
        let payload: Vec<u8> = (0..len)
            .map(|j| (neo::fault::splitmix64(h ^ j as u64) & 0xFF) as u8)
            .collect();
        let id = RecordId {
            kind,
            tenant: 3,
            level: i as u64,
            aux: i as u64,
        };
        store.put(id, h, 0xBEEF, payload.clone());
        clean.push((id, payload));
    }
    store.commit().unwrap();
    let image = std::fs::read(&path).unwrap();
    (path, image, clean)
}

/// The contract every damaged open must uphold: served bytes are exact,
/// everything else is classified and reported.
fn assert_recover_or_quarantine(
    path: &PathBuf,
    clean: &[(RecordId, Vec<u8>)],
    damaged: bool,
) -> Result<(), TestCaseError> {
    let store = Store::open(path).unwrap();
    let mut intact = 0usize;
    for (id, want) in clean {
        match store.get(*id) {
            Ok(Some(got)) => {
                prop_assert_eq!(&got, want, "served bytes must be bit-identical");
                intact += 1;
            }
            Ok(None) => {
                // Missing or recoverable: the damaged kind decides.
                let st = store.status(*id);
                prop_assert!(
                    st == RecordStatus::Missing || st == RecordStatus::Recoverable,
                    "None for a {:?} record",
                    st
                );
                prop_assert!(
                    st != RecordStatus::Recoverable || id.kind.seed_recoverable(),
                    "non-KSK kind classified recoverable"
                );
            }
            Err(_) => {
                prop_assert_eq!(store.status(*id), RecordStatus::Quarantined);
            }
        }
    }
    let report = store.report();
    if damaged {
        prop_assert!(
            intact < clean.len() || report.quarantined > 0 || report.recoverable > 0,
            "damage neither surfaced in a record nor in the report"
        );
    }
    // Accounting must be consistent: valid records counted exactly.
    prop_assert_eq!(report.valid, store.len());
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Truncating the committed file at ANY offset leaves a store that
    /// serves only exact bytes and classifies the lost tail.
    #[test]
    fn truncation_at_any_offset_recovers_or_quarantines(
        seed in any::<u64>(),
        frac in 0.0f64..1.0,
    ) {
        let (path, image, clean) = committed_fixture(seed, "trunc");
        let cut = (image.len() as f64 * frac) as usize;
        std::fs::write(&path, &image[..cut]).unwrap();
        let res = assert_recover_or_quarantine(&path, &clean, cut < image.len());
        let _ = std::fs::remove_file(&path);
        res?;
    }

    /// Flipping ANY single bit of the committed file is detected: the
    /// damaged record is recoverable/quarantined (or, for framing
    /// damage, the tail is) — never served corrupt.
    #[test]
    fn bit_flip_at_any_offset_recovers_or_quarantines(
        seed in any::<u64>(),
        off_frac in 0.0f64..1.0,
        bit in 0u8..8,
    ) {
        let (path, image, clean) = committed_fixture(seed, "flip");
        let mut damaged = image.clone();
        let off = ((damaged.len() - 1) as f64 * off_frac) as usize;
        damaged[off] ^= 1 << bit;
        std::fs::write(&path, &damaged).unwrap();
        let res = assert_recover_or_quarantine(&path, &clean, true);
        let _ = std::fs::remove_file(&path);
        res?;
    }

    /// Double damage (truncate *and* flip a surviving bit) still upholds
    /// the contract — classifications compose.
    #[test]
    fn combined_damage_recovers_or_quarantines(
        seed in any::<u64>(),
        frac in 0.2f64..1.0,
        off_frac in 0.0f64..1.0,
        bit in 0u8..8,
    ) {
        let (path, image, clean) = committed_fixture(seed, "both");
        let cut = ((image.len() as f64 * frac) as usize).max(1);
        let mut damaged = image[..cut].to_vec();
        let off = ((damaged.len() - 1) as f64 * off_frac) as usize;
        damaged[off] ^= 1 << bit;
        std::fs::write(&path, &damaged).unwrap();
        let res = assert_recover_or_quarantine(&path, &clean, true);
        let _ = std::fs::remove_file(&path);
        res?;
    }
}

/// End-to-end: damage a persisted FHE session at a seeded offset; the
/// warm start must either rebuild a session that decrypts the original
/// ciphertext exactly (seed recovery) or refuse with a typed error —
/// never decrypt wrong.
#[test]
fn damaged_session_warm_start_recovers_or_refuses() {
    let ctx = Arc::new(CkksContext::new(CkksParams::test_tiny()).unwrap());
    let path = case_path("session");
    let engine = FheEngine::with_context(ctx.clone(), 31);
    let level = ctx.params().max_level;
    engine
        .chest()
        .warm(level, KeyTarget::Relin, engine.method())
        .unwrap();
    let ct = engine.encrypt_f64(&[2.75], level).unwrap();
    let mut ss = SessionStore::open(&path, ctx.clone()).unwrap();
    ss.save_engine(5, &engine, 31);
    ss.save_ciphertext(5, 0, &ct);
    ss.commit().unwrap();
    let image = std::fs::read(&path).unwrap();

    // Sweep damage across the whole file at a seeded stride.
    let stride = (image.len() / 40).max(1);
    for (i, off) in (0..image.len()).step_by(stride).enumerate() {
        let mut damaged = image.clone();
        let bit = (neo::fault::splitmix64(off as u64) % 8) as u8;
        damaged[off] ^= 1 << bit;
        std::fs::write(&path, &damaged).unwrap();

        let mut ss2 = SessionStore::open(&path, ctx.clone()).unwrap();
        // Ok(None)/Err at either layer means the damaged record was
        // classified (recoverable/quarantined) or the start refused typed.
        if let Ok(Some(warm)) = ss2.warm_start(5) {
            // A session came back: decryptions must be exact.
            if let Ok(Some(back)) = ss2.load_ciphertext(5, 0) {
                let vals = warm.decrypt_f64(&back).unwrap();
                assert!(
                    (vals[0] - 2.75).abs() < 1e-3,
                    "offset {off} (sweep {i}): warm session decrypted WRONG value {}",
                    vals[0]
                );
            }
        }
    }
    let _ = std::fs::remove_file(&path);
}
