//! Cross-crate metrics tests: the FheEngine's per-op latency and noise
//! histograms, the scheduler's utilization gauges cross-checked against
//! analytic component times, and exporter round-trips through strict
//! parsers (Prometheus text, JSON, Chrome trace).

use neo::ckks::batch::{BatchOp, BatchProgram, Slot};
use neo::ckks::cost::{CostConfig, Operation};
use neo::ckks::sched::batch_op_graph;
use neo::ckks::{CkksParams, FheEngine, ParamSet};
use neo::gpu_sim::DeviceModel;
use neo::metrics::jsonv::{self, JsonValue};
use neo::sched::{chrome_trace, publish_utilization, simulate, SimConfig};
use std::collections::BTreeSet;
use std::sync::Mutex;

/// The metrics gate and default registry are process-wide; every test
/// that enables the gate or reads the registry serializes on this lock.
static GATE: Mutex<()> = Mutex::new(());

// ---------------------------------------------------------------------
// FheEngine histograms
// ---------------------------------------------------------------------

/// Batch execution populates per-op-kind latency and noise-consumption
/// histograms, readable as p50/p95/p99 out of one registry snapshot —
/// the serving-layer contract of the metrics tentpole.
#[test]
fn engine_batch_exposes_latency_and_noise_histograms() {
    let _g = GATE.lock().unwrap_or_else(|e| e.into_inner());
    let engine = FheEngine::new(CkksParams::test_tiny(), 7).expect("params are valid");
    let a = engine.encrypt_f64(&[0.5, 0.25], 3).expect("encrypt");
    let b = engine.encrypt_f64(&[0.25, 0.125], 3).expect("encrypt");

    let mut prog = BatchProgram::new();
    let m = prog
        .try_push(BatchOp::HMult(Slot::Input(0), Slot::Input(1)))
        .expect("legal op");
    let r = prog.try_push(BatchOp::Rescale(m)).expect("legal op");
    let s = prog.try_push(BatchOp::HAdd(r, r)).expect("legal op");
    prog.try_push(BatchOp::HRotate(s, 1)).expect("legal op");

    neo::metrics::enable();
    let report = engine
        .execute_batch_with_report(&prog, &[a, b], false, 1)
        .expect("batch executes");
    neo::metrics::disable();
    assert!(report.results.iter().all(Result::is_ok));

    let snap = neo::metrics::registry().snapshot();
    for op in ["hmult", "rescale", "hadd", "hrotate"] {
        let lat = snap
            .histogram("fhe_op_latency_ns", &[("op", op)])
            .unwrap_or_else(|| panic!("latency histogram for {op} missing"));
        assert!(lat.count >= 1, "{op}: no latency samples");
        let (p50, p95, p99) = (lat.p50(), lat.p95(), lat.p99());
        assert!(
            p50 <= p95 && p95 <= p99 && p99 <= lat.max,
            "{op}: quantiles out of order: p50={p50} p95={p95} p99={p99} max={}",
            lat.max
        );
        assert!(p50 > 0, "{op}: zero-latency op is implausible");

        let noise = snap
            .histogram("fhe_noise_consumed_bits", &[("op", op)])
            .unwrap_or_else(|| panic!("noise histogram for {op} missing"));
        assert!(noise.count >= 1, "{op}: no noise samples");
    }
    // HMult burns real budget; the histogram must have seen it.
    let hmult_noise = snap
        .histogram("fhe_noise_consumed_bits", &[("op", "hmult")])
        .expect("present");
    assert!(
        hmult_noise.max >= 1,
        "HMult consumed no noise budget bits: max={}",
        hmult_noise.max
    );
    let ops = snap.counter("fhe_batch_ops_total", &[]).expect("counter");
    assert!(ops >= 4, "batch op counter {ops} < 4");
}

// ---------------------------------------------------------------------
// Scheduler utilization cross-check
// ---------------------------------------------------------------------

/// On the 4-stream fused KLSS HMult scenario the simulator's busy-time
/// accounting (what the gauges report) must agree with the analytic sum
/// of per-kernel engine times to ≤ 1% — the engines are exclusive and
/// HBM is work-conserving, so no service time may be created or lost.
#[test]
fn sched_utilization_gauges_match_component_sums() {
    let _g = GATE.lock().unwrap_or_else(|e| e.into_inner());
    let dev = DeviceModel::a100();
    let p = ParamSet::C.params();
    let hmult = batch_op_graph(&p, 35, Operation::HMult, &CostConfig::neo(), 8);
    let (fused, _) = hmult.fuse_elementwise();
    let sched = simulate(&fused, &dev, SimConfig::streams(4));

    let (mut cuda_sum, mut tcu_sum, mut mem_sum) = (0.0f64, 0.0f64, 0.0f64);
    for node in fused.nodes() {
        let (c, t, m, _) = dev.component_times(&node.profile);
        cuda_sum += c;
        tcu_sum += t;
        mem_sum += m;
    }
    let within_1pct = |got: f64, want: f64, what: &str| {
        let rel = if want > 0.0 {
            (got - want).abs() / want
        } else {
            got.abs()
        };
        assert!(
            rel <= 0.01,
            "{what}: got {got}, analytic {want} ({:.3}% off)",
            rel * 100.0
        );
    };
    within_1pct(sched.busy.cuda_s, cuda_sum, "cuda busy");
    within_1pct(sched.busy.tcu_s, tcu_sum, "tcu busy");
    within_1pct(sched.busy.hbm_s, mem_sum, "hbm busy");
    within_1pct(
        sched.busy.stream_compute_s.iter().sum(),
        cuda_sum + tcu_sum,
        "per-stream compute",
    );
    within_1pct(
        sched.busy.stream_mem_s.iter().sum(),
        sched.busy.hbm_s,
        "per-stream hbm",
    );

    neo::metrics::enable();
    publish_utilization(&sched);
    neo::metrics::disable();
    let snap = neo::metrics::registry().snapshot();
    let window = sched.device_window_s();
    assert!(window > 0.0);
    for (engine, busy_s) in [
        ("cuda", sched.busy.cuda_s),
        ("tcu", sched.busy.tcu_s),
        ("hbm", sched.busy.hbm_s),
    ] {
        let gauge = snap
            .gauge("sched_engine_busy_fraction", &[("engine", engine)])
            .unwrap_or_else(|| panic!("{engine} gauge missing"));
        assert!(
            (gauge - busy_s / window).abs() < 1e-12,
            "{engine}: gauge {gauge} != busy/window {}",
            busy_s / window
        );
        assert!(
            gauge > 0.0 && gauge <= 1.0 + 1e-9,
            "{engine} fraction {gauge}"
        );
    }
    for s in 0..4 {
        let stream = s.to_string();
        let g = snap
            .gauge(
                "sched_stream_busy_fraction",
                &[("stream", &stream), ("engine", "compute")],
            )
            .expect("per-stream gauge");
        assert!((0.0..=1.0 + 1e-9).contains(&g), "stream {s} fraction {g}");
    }
}

// ---------------------------------------------------------------------
// Strict exporter round-trips
// ---------------------------------------------------------------------

/// One parsed Prometheus sample line.
struct PromSample {
    name: String,
    labels: Vec<(String, String)>,
    value: f64,
}

/// Strict parser for the Prometheus text exposition subset the exporter
/// emits. Panics on any malformed line, unknown escape, or duplicate
/// series — the test-side contract for satellite 3.
fn parse_prometheus(text: &str) -> Vec<PromSample> {
    let mut samples = Vec::new();
    let mut seen = BTreeSet::new();
    let mut typed: BTreeSet<String> = BTreeSet::new();
    for line in text.lines() {
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix("# TYPE ") {
            let mut it = rest.split_whitespace();
            let fam = it.next().expect("# TYPE has a family name").to_string();
            let kind = it.next().expect("# TYPE has a kind");
            assert!(
                ["counter", "gauge", "summary"].contains(&kind),
                "unknown TYPE {kind}"
            );
            assert!(it.next().is_none(), "trailing tokens on TYPE line: {line}");
            assert!(typed.insert(fam.clone()), "duplicate # TYPE for {fam}");
            continue;
        }
        assert!(!line.starts_with('#'), "unexpected comment {line:?}");
        let (series, value_str) = match line.find('}') {
            Some(close) => {
                let v = line[close + 1..].trim();
                (&line[..close + 1], v)
            }
            None => {
                let sp = line
                    .find(' ')
                    .unwrap_or_else(|| panic!("no value in {line:?}"));
                (&line[..sp], line[sp + 1..].trim())
            }
        };
        let value: f64 = match value_str {
            "+Inf" => f64::INFINITY,
            "-Inf" => f64::NEG_INFINITY,
            "NaN" => f64::NAN,
            v => v
                .parse()
                .unwrap_or_else(|e| panic!("bad value in {line:?}: {e}")),
        };
        let (name, labels) = match series.find('{') {
            None => (series.to_string(), Vec::new()),
            Some(open) => {
                assert!(
                    series.ends_with('}'),
                    "unterminated label block in {line:?}"
                );
                let name = series[..open].to_string();
                let body = &series[open + 1..series.len() - 1];
                (name, parse_label_block(body, line))
            }
        };
        assert!(
            name.chars()
                .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':'),
            "invalid metric name {name:?}"
        );
        assert!(
            !name.is_empty() && !name.chars().next().expect("nonempty").is_ascii_digit(),
            "invalid metric name {name:?}"
        );
        let key = format!("{name}{series:?}");
        assert!(seen.insert(key), "duplicate series in export: {line:?}");
        samples.push(PromSample {
            name,
            labels,
            value,
        });
    }
    samples
}

/// Parses `k="v",k2="v2"` with the three Prometheus escapes.
fn parse_label_block(body: &str, line: &str) -> Vec<(String, String)> {
    let mut labels = Vec::new();
    let mut chars = body.chars().peekable();
    loop {
        let mut key = String::new();
        while let Some(&c) = chars.peek() {
            if c == '=' {
                break;
            }
            key.push(c);
            chars.next();
        }
        assert!(!key.is_empty(), "empty label key in {line:?}");
        assert_eq!(chars.next(), Some('='), "missing '=' in {line:?}");
        assert_eq!(chars.next(), Some('"'), "missing opening quote in {line:?}");
        let mut value = String::new();
        loop {
            match chars.next() {
                Some('\\') => match chars.next() {
                    Some('\\') => value.push('\\'),
                    Some('"') => value.push('"'),
                    Some('n') => value.push('\n'),
                    other => panic!("invalid escape \\{other:?} in {line:?}"),
                },
                Some('"') => break,
                Some(c) => value.push(c),
                None => panic!("unterminated label value in {line:?}"),
            }
        }
        let dup = labels.iter().any(|(k, _)| *k == key);
        assert!(!dup, "duplicate label key {key:?} in {line:?}");
        labels.push((key, value));
        match chars.next() {
            Some(',') => continue,
            None => break,
            Some(c) => panic!("unexpected {c:?} after label in {line:?}"),
        }
    }
    labels
}

/// The Prometheus exporter round-trips through the strict parser: every
/// line parses, no series repeats, and hostile label values (quotes,
/// backslashes, newlines) survive escape + unescape byte-identical.
#[test]
fn prometheus_export_round_trips_through_strict_parser() {
    let _g = GATE.lock().unwrap_or_else(|e| e.into_inner());
    neo::metrics::enable();
    let hostile = "a\\b\"c\nd";
    neo::metrics::counter("roundtrip_requests_total", &[("path", hostile)]).add(3);
    neo::metrics::gauge("roundtrip_depth", &[("q", "x,y=z")]).set(-2.5);
    let h = neo::metrics::histogram("roundtrip_latency_ns", &[("op", "probe")]);
    for v in [100, 200, 400, 800] {
        h.record(v);
    }
    neo::metrics::disable();

    let snap = neo::metrics::registry().snapshot();
    let text = neo::metrics::export::prometheus_text(&snap);
    let samples = parse_prometheus(&text);
    assert!(!samples.is_empty());

    let counter = samples
        .iter()
        .find(|s| s.name == "roundtrip_requests_total")
        .expect("counter exported");
    assert_eq!(counter.value, 3.0);
    assert_eq!(
        counter.labels,
        vec![("path".to_string(), hostile.to_string())],
        "hostile label value must round-trip byte-identical"
    );
    let gauge = samples
        .iter()
        .find(|s| s.name == "roundtrip_depth")
        .expect("gauge");
    assert_eq!(gauge.value, -2.5);
    // The histogram exports as a summary: quantile series + _count/_sum/_max.
    let quantiles: Vec<&PromSample> = samples
        .iter()
        .filter(|s| {
            s.name == "roundtrip_latency_ns" && s.labels.iter().any(|(k, _)| k == "quantile")
        })
        .collect();
    assert!(!quantiles.is_empty(), "summary quantile series missing");
    let count = samples
        .iter()
        .find(|s| s.name == "roundtrip_latency_ns_count")
        .expect("_count series");
    assert_eq!(count.value, 4.0);
}

/// The JSON exporter parses under the strict [`jsonv`] grammar (which
/// rejects duplicate keys outright) and carries one entry per series
/// with no (name, labels) collisions.
#[test]
fn json_export_round_trips_through_strict_parser() {
    let _g = GATE.lock().unwrap_or_else(|e| e.into_inner());
    neo::metrics::enable();
    neo::metrics::counter("jsonrt_total", &[("kind", "a")]).add(1);
    neo::metrics::counter("jsonrt_total", &[("kind", "b")]).add(2);
    neo::metrics::histogram("jsonrt_ns", &[]).record(1234);
    neo::metrics::disable();

    let snap = neo::metrics::registry().snapshot();
    let doc = jsonv::parse(&neo::metrics::export::json(&snap)).expect("exporter emits valid JSON");
    let metrics = doc
        .get("metrics")
        .and_then(JsonValue::as_array)
        .expect("top-level metrics array");
    assert!(!metrics.is_empty());
    let mut seen = BTreeSet::new();
    for m in metrics {
        let name = m.get("name").and_then(JsonValue::as_str).expect("name");
        let labels = m
            .get("labels")
            .and_then(JsonValue::as_object)
            .expect("labels");
        let key = format!("{name}|{labels:?}");
        assert!(seen.insert(key), "duplicate series {name} in JSON export");
        let kind = m.get("type").and_then(JsonValue::as_str).expect("type");
        match kind {
            "counter" | "gauge" => {
                assert!(m.get("value").and_then(JsonValue::as_f64).is_some());
            }
            "histogram" => {
                let h = m.get("histogram").expect("nested histogram object");
                for field in ["count", "sum", "p50", "p99", "max"] {
                    assert!(
                        h.get(field).and_then(JsonValue::as_f64).is_some(),
                        "histogram missing {field}"
                    );
                }
            }
            other => panic!("unknown metric type {other:?}"),
        }
    }
    let hist = metrics
        .iter()
        .find(|m| m.get("name").and_then(JsonValue::as_str) == Some("jsonrt_ns"))
        .and_then(|m| m.get("histogram"))
        .expect("histogram exported");
    assert!(
        hist.get("count")
            .and_then(JsonValue::as_f64)
            .expect("count")
            >= 1.0
    );
}

/// The simulated Chrome trace is valid JSON under the strict parser and
/// every track's complete-events carry monotone non-decreasing start
/// timestamps with non-negative durations.
#[test]
fn chrome_trace_is_valid_json_with_monotone_tracks() {
    let dev = DeviceModel::a100();
    let p = ParamSet::C.params();
    let g = batch_op_graph(&p, 35, Operation::HMult, &CostConfig::neo(), 4);
    let (fused, _) = g.fuse_elementwise();
    let sched = simulate(&fused, &dev, SimConfig::streams(2));
    let trace = chrome_trace(&fused, &sched);

    let doc = jsonv::parse(&trace).expect("chrome trace is valid JSON");
    let events = doc
        .get("traceEvents")
        .and_then(JsonValue::as_array)
        .expect("traceEvents array");
    assert!(!events.is_empty());
    let mut last_ts: std::collections::BTreeMap<u64, f64> = std::collections::BTreeMap::new();
    let mut complete = 0usize;
    for e in events {
        let ph = e.get("ph").and_then(JsonValue::as_str).expect("ph");
        match ph {
            "M" => {
                assert_eq!(
                    e.get("name").and_then(JsonValue::as_str),
                    Some("thread_name")
                );
            }
            "X" => {
                complete += 1;
                let tid = e.get("tid").and_then(JsonValue::as_f64).expect("tid") as u64;
                let ts = e.get("ts").and_then(JsonValue::as_f64).expect("ts");
                let dur = e.get("dur").and_then(JsonValue::as_f64).expect("dur");
                assert!(ts >= 0.0 && dur >= 0.0, "negative time: ts={ts} dur={dur}");
                if let Some(&prev) = last_ts.get(&tid) {
                    assert!(
                        ts >= prev,
                        "track {tid}: timestamps regress ({ts} after {prev})"
                    );
                }
                last_ts.insert(tid, ts);
            }
            other => panic!("unexpected event phase {other:?}"),
        }
    }
    assert!(complete >= fused.len(), "fewer spans than kernels");
}
