//! The fault matrix: ≥ 1000 seeded injection trials across every
//! [`neo::fault::FaultSite`], asserting the stack's end-to-end safety
//! contract — **no silent corruption, ever**. Each trial arms a
//! deterministic fault plan, runs the affected layer, and requires one of
//! exactly two outcomes:
//!
//! 1. a result **bit-identical** to the fault-free run (the fault was
//!    detected and recovered — retry, quarantine, resynthesis, dedup), or
//! 2. a **typed** error naming the site ([`NeoError::FaultDetected`], or
//!    [`ErrorKind::PoisonedInput`] for ops downstream of a detected one).
//!
//! A trial where the output differs from clean without a typed error is a
//! silent corruption and fails the matrix; the failing seed is printed so
//! the trial reproduces exactly.
//!
//! This binary is its own process, so the globally armed plans cannot leak
//! into other test binaries; within the binary every test serializes on
//! `test_lock` because clean baseline phases must not overlap another
//! test's armed window.

use neo::fault::{FaultPlan, FaultScope, FaultSite, FaultSpec};
use neo::gpu_sim::{DeviceModel, DeviceSpec, KernelProfile};
use neo::math::{primes, Modulus};
use neo::prelude::*;
use neo::sched::{simulate, try_simulate, NodeId, OpGraph, SimConfig};
use neo::tcu::{CheckedGemm, Fp64TcuGemm};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::{Arc, Mutex, MutexGuard, OnceLock, PoisonError};

const TCU_TRIALS: u64 = 300;
const NTT_STAGE_TRIALS: u64 = 300;
const NTT_PLAN_TRIALS: u64 = 100;
const SCHED_TRIALS: u64 = 250;
const CKKS_TRIALS: u64 = 100;
const SERVE_TRIALS: u64 = 50;
const STORE_WRITE_TRIALS: u64 = 400;
const STORE_READ_TRIALS: u64 = 300;
const STORE_TORN_TRIALS: u64 = 350;

fn test_lock() -> MutexGuard<'static, ()> {
    static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
    LOCK.get_or_init(|| Mutex::new(()))
        .lock()
        .unwrap_or_else(PoisonError::into_inner)
}

/// Detection sites an error may legitimately name.
const DETECTION_SITES: [&str; 8] = [
    "tcu_gemm",
    "ntt_forward",
    "ntt_inverse",
    "ntt_plan",
    "ckks_op",
    "sched_completion",
    "store_record",
    "store_read",
];

fn assert_detected(err: &NeoError, trial: u64, seed: u64) {
    match err {
        NeoError::FaultDetected { site, .. } => assert!(
            DETECTION_SITES.contains(site),
            "trial {trial} (seed {seed}): unknown detection site {site}"
        ),
        other => assert_eq!(
            other.kind(),
            ErrorKind::PoisonedInput,
            "trial {trial} (seed {seed}): untyped failure {other}"
        ),
    }
}

/// Every batch op either matches the clean run bit-for-bit or fails with
/// a typed fault/poison error — the core no-silent-corruption check.
fn assert_batch_sound(report: &BatchReport, clean: &[Ciphertext], trial: u64, seed: u64) {
    for (i, r) in report.results.iter().enumerate() {
        match r {
            Ok(ct) => assert_eq!(
                ct, &clean[i],
                "trial {trial} (seed {seed}): SILENT CORRUPTION at op {i}"
            ),
            Err(e) => assert_detected(e, trial, seed),
        }
    }
}

#[test]
#[allow(clippy::assertions_on_constants)] // the point: pin the trial-count floor
fn the_matrix_covers_at_least_1000_trials() {
    assert!(
        TCU_TRIALS + NTT_STAGE_TRIALS + NTT_PLAN_TRIALS + SCHED_TRIALS + CKKS_TRIALS + SERVE_TRIALS
            >= 1000,
        "fault matrix shrank below the 1000-trial floor"
    );
    assert!(
        STORE_WRITE_TRIALS + STORE_READ_TRIALS + STORE_TORN_TRIALS >= 1000,
        "store fault matrix shrank below its own 1000-trial floor"
    );
}

/// Bit flips in tensor-core fragment accumulators across random GEMM
/// shapes: the Huang–Abraham checksum must catch every one.
#[test]
fn tcu_fragment_matrix() {
    let _l = test_lock();
    let q = Modulus::new(primes::ntt_primes(36, 8, 1).unwrap()[0]).unwrap();
    let gemm = CheckedGemm::new(Fp64TcuGemm::for_word_size(36));
    let mut injected = 0u64;
    for trial in 0..TCU_TRIALS {
        let seed = 0x7c00 + trial;
        let mut rng = StdRng::seed_from_u64(seed);
        let (m, k, n) = (
            rng.gen_range(1..12usize),
            rng.gen_range(1..12usize),
            rng.gen_range(1..12usize),
        );
        let a: Vec<u64> = (0..m * k).map(|_| rng.gen_range(0..q.value())).collect();
        let b: Vec<u64> = (0..k * n).map(|_| rng.gen_range(0..q.value())).collect();
        let mut clean = vec![0u64; m * n];
        gemm.gemm_verified(&q, &a, &b, m, k, n, &mut clean).unwrap();

        let plan =
            Arc::new(FaultPlan::new(seed).with_site(FaultSite::TcuFragment, FaultSpec::once()));
        let scope = FaultScope::install(plan.clone());
        let mut out = vec![0u64; m * n];
        let res = gemm.gemm_verified(&q, &a, &b, m, k, n, &mut out);
        drop(scope);
        injected += plan.injected(FaultSite::TcuFragment);
        match res {
            Ok(()) => assert_eq!(
                out, clean,
                "trial {trial} (seed {seed}): SILENT CORRUPTION in {m}x{k}x{n} GEMM"
            ),
            Err(e) => assert_detected(&e, trial, seed),
        }
    }
    assert!(
        injected >= TCU_TRIALS / 2,
        "matrix is vacuous: only {injected} injections over {TCU_TRIALS} trials"
    );
}

/// Corrupted limbs after NTT stage execution: the spot check must flag
/// the transform whenever the output deviates from clean.
#[test]
fn ntt_stage_matrix() {
    let _l = test_lock();
    let q = primes::ntt_primes(36, 256, 1).unwrap()[0];
    let plan_fwd = neo::ntt::cache::get_or_build(q, 128).unwrap();
    let modulus = Modulus::new(q).unwrap();
    let mut injected = 0u64;
    for trial in 0..NTT_STAGE_TRIALS {
        let seed = 0x57a6e00 + trial;
        let mut rng = StdRng::seed_from_u64(seed);
        let coeffs: Vec<u64> = (0..128)
            .map(|_| rng.gen_range(0..modulus.value()))
            .collect();
        let forward = trial % 2 == 0;
        let transform = |x: &mut [u64]| {
            if forward {
                neo::ntt::radix2::forward(&plan_fwd, x);
            } else {
                neo::ntt::radix2::inverse(&plan_fwd, x);
            }
        };
        let mut clean = coeffs.clone();
        transform(&mut clean);

        let plan = Arc::new(FaultPlan::new(seed).with_site(FaultSite::NttStage, FaultSpec::once()));
        let scope = FaultScope::install(plan.clone());
        let mut out = coeffs.clone();
        transform(&mut out);
        drop(scope);
        injected += plan.injected(FaultSite::NttStage);

        let check = if forward {
            neo::ntt::spot_check_transform(&plan_fwd, &coeffs, &out, seed, true)
        } else {
            neo::ntt::spot_check_transform(&plan_fwd, &out, &coeffs, seed, false)
        };
        match check {
            Ok(()) => assert_eq!(
                out, clean,
                "trial {trial} (seed {seed}): SILENT CORRUPTION in NTT output"
            ),
            Err(e) => assert_detected(&e, trial, seed),
        }
    }
    assert!(
        injected >= NTT_STAGE_TRIALS / 2,
        "matrix is vacuous: only {injected} injections over {NTT_STAGE_TRIALS} trials"
    );
}

/// Poisoned plan-cache entries under an always-verifying engine: batches
/// must quarantine the entry and recover, or fail typed — never return a
/// ciphertext computed with corrupt twiddles.
#[test]
fn ntt_plan_matrix() {
    let _l = test_lock();
    let e = FheEngine::new(CkksParams::test_tiny(), engine_seed())
        .unwrap()
        .with_policy(OpPolicy {
            verify: VerifyPolicy::Always,
            ..OpPolicy::default()
        });
    let (prog, cts) = batch_fixture(&e);
    let clean = unwrap_all(e.execute_batch(&prog, &cts, false).unwrap());
    let mut injected = 0u64;
    for trial in 0..NTT_PLAN_TRIALS {
        let seed = 0x91a700 + trial;
        let plan = Arc::new(FaultPlan::new(seed).with_site(FaultSite::NttPlan, FaultSpec::once()));
        let scope = FaultScope::install(plan.clone());
        let report = e
            .execute_batch_with_report(&prog, &cts, trial % 2 == 1, 2)
            .unwrap();
        drop(scope);
        injected += plan.injected(FaultSite::NttPlan);
        assert_batch_sound(&report, &clean, trial, seed);
        // Sweep any leftover poisoned entry so trials stay independent.
        neo::ntt::cache::quarantine_corrupt();
    }
    assert!(
        injected >= NTT_PLAN_TRIALS / 2,
        "matrix is vacuous: only {injected} injections over {NTT_PLAN_TRIALS} trials"
    );
}

/// Dropped/duplicated kernel completions in the timeline simulator:
/// watchdog resynthesis and dedup must keep the schedule bit-identical.
#[test]
fn sched_completion_matrix() {
    let _l = test_lock();
    let dev = DeviceModel::new(DeviceSpec::a100());
    let mut injected = 0u64;
    for trial in 0..SCHED_TRIALS {
        let seed = 0x5c4ed00 + trial;
        let g = random_graph(seed);
        let clean = simulate(&g, &dev, SimConfig::streams(2));

        let plan = Arc::new(FaultPlan::new(seed).with_site(
            FaultSite::SchedCompletion,
            FaultSpec::with_probability_ppm(500_000),
        ));
        let scope = FaultScope::install(plan.clone());
        let faulty = try_simulate(&g, &dev, SimConfig::streams(2));
        drop(scope);
        injected += plan.injected(FaultSite::SchedCompletion);
        match faulty {
            Ok(s) => {
                assert_eq!(
                    s.timeline, clean.timeline,
                    "trial {trial} (seed {seed}): SILENT TIMELINE CORRUPTION"
                );
                assert_eq!(s.makespan_s, clean.makespan_s);
            }
            Err(e) => assert_detected(&e, trial, seed),
        }
    }
    assert!(
        injected >= SCHED_TRIALS / 4,
        "matrix is vacuous: only {injected} injections over {SCHED_TRIALS} trials"
    );
}

/// Spurious transient op errors in the CKKS layer: bounded retry must
/// recover them bit-identically or isolate them with typed errors.
#[test]
fn ckks_op_matrix() {
    let _l = test_lock();
    let e = FheEngine::new(CkksParams::test_tiny(), engine_seed()).unwrap();
    let (prog, cts) = batch_fixture(&e);
    let clean = unwrap_all(e.execute_batch(&prog, &cts, false).unwrap());
    let mut injected = 0u64;
    for trial in 0..CKKS_TRIALS {
        let seed = 0xcc5500 + trial;
        let plan = Arc::new(FaultPlan::new(seed).with_site(
            FaultSite::CkksOp,
            FaultSpec::with_probability_ppm(400_000).max_fires(3),
        ));
        let scope = FaultScope::install(plan.clone());
        let report = e
            .execute_batch_with_report(&prog, &cts, trial % 2 == 1, 2)
            .unwrap();
        drop(scope);
        injected += plan.injected(FaultSite::CkksOp);
        assert_batch_sound(&report, &clean, trial, seed);
    }
    assert!(
        injected >= CKKS_TRIALS / 4,
        "matrix is vacuous: only {injected} injections over {CKKS_TRIALS} trials"
    );
}

/// The same no-silent-corruption contract, asserted through the serving
/// layer: coalesced multi-tenant batches under spurious op faults must
/// return, per tenant, either that tenant's serial fault-free bits or a
/// typed error — never a neighbour's fault leaking across sessions.
#[test]
fn serve_layer_matrix() {
    let _l = test_lock();
    use neo::serve::{ServeConfig, ServiceCore, TenantConfig, TenantRegistry};
    const TENANTS: u64 = 3;
    let registry = Arc::new(TenantRegistry::new(CkksParams::test_tiny()).unwrap());
    let mut clean = Vec::new();
    for id in 0..TENANTS {
        let cfg = TenantConfig {
            policy: OpPolicy {
                verify: VerifyPolicy::Always,
                ..OpPolicy::default()
            },
            fault_budget: u64::MAX, // budget shedding is tested elsewhere
            ..TenantConfig::default()
        };
        let s = registry.register(id, engine_seed() + id, cfg).unwrap();
        let (prog, cts) = batch_fixture(s.engine());
        let reference = unwrap_all(s.engine().execute_batch(&prog, &cts, false).unwrap());
        clean.push((prog, cts, reference));
    }
    let mut core = ServiceCore::new(Arc::clone(&registry), ServeConfig::default());

    let mut injected = 0u64;
    for trial in 0..SERVE_TRIALS {
        let seed = 0x5e77e00 + trial;
        for id in 0..TENANTS {
            let (prog, cts, _) = &clean[id as usize];
            core.submit(id, prog.clone(), cts.clone()).unwrap();
        }
        let plan = Arc::new(FaultPlan::new(seed).with_site(
            FaultSite::CkksOp,
            FaultSpec::with_probability_ppm(400_000).max_fires(3),
        ));
        let scope = FaultScope::install(plan.clone());
        let responses = core.run_until_idle();
        drop(scope);
        injected += plan.injected(FaultSite::CkksOp);

        assert_eq!(
            responses.len(),
            TENANTS as usize,
            "trial {trial} (seed {seed}): a tenant was starved"
        );
        for resp in &responses {
            let reference = &clean[resp.tenant as usize].2;
            match &resp.outcome {
                Ok(results) => {
                    for (i, r) in results.iter().enumerate() {
                        match r {
                            Ok(ct) => assert_eq!(
                                ct, &reference[i],
                                "trial {trial} (seed {seed}): SILENT CORRUPTION for tenant {} op {i}",
                                resp.tenant
                            ),
                            Err(e) => assert_detected(e, trial, seed),
                        }
                    }
                }
                Err(e) => assert_detected(e, trial, seed),
            }
        }
    }
    assert!(
        injected >= SERVE_TRIALS / 4,
        "matrix is vacuous: only {injected} injections over {SERVE_TRIALS} trials"
    );
}

/// Bit flips in the serialized store image at commit time: the next
/// open's recovery scan must classify every damaged record — whatever a
/// later `get` serves must be bit-identical to what was written.
#[test]
fn store_write_matrix() {
    let _l = test_lock();
    let path = store_matrix_path("write");
    let mut injected = 0u64;
    for trial in 0..STORE_WRITE_TRIALS {
        let seed = 0x0005_704e_0000 + trial;
        let (store, clean) = store_fixture(seed, &path);
        let plan =
            Arc::new(FaultPlan::new(seed).with_site(FaultSite::StoreWrite, FaultSpec::once()));
        let scope = FaultScope::install(plan.clone());
        store.commit().unwrap();
        drop(scope);
        injected += plan.injected(FaultSite::StoreWrite);
        assert_store_sound(&path, &clean, trial, seed);
    }
    let _ = std::fs::remove_file(&path);
    assert!(
        injected >= STORE_WRITE_TRIALS / 2,
        "matrix is vacuous: only {injected} injections over {STORE_WRITE_TRIALS} trials"
    );
}

/// Truncation of the committed image at a seeded offset — the torn-write
/// crash model: the scan keeps the intact prefix and classifies the
/// tail, never parses past the cut.
#[test]
fn store_torn_matrix() {
    let _l = test_lock();
    let path = store_matrix_path("torn");
    let mut injected = 0u64;
    for trial in 0..STORE_TORN_TRIALS {
        let seed = 0x0005_704e_1000 + trial;
        let (store, clean) = store_fixture(seed, &path);
        let plan =
            Arc::new(FaultPlan::new(seed).with_site(FaultSite::StoreTorn, FaultSpec::once()));
        let scope = FaultScope::install(plan.clone());
        store.commit().unwrap();
        drop(scope);
        injected += plan.injected(FaultSite::StoreTorn);
        assert_store_sound(&path, &clean, trial, seed);
    }
    let _ = std::fs::remove_file(&path);
    assert!(
        injected >= STORE_TORN_TRIALS / 2,
        "matrix is vacuous: only {injected} injections over {STORE_TORN_TRIALS} trials"
    );
}

/// Bit rot on the read path: every `get` re-verifies the payload
/// checksum, so a flipped bit surfaces as a typed error, never as
/// corrupt bytes.
#[test]
fn store_read_matrix() {
    let _l = test_lock();
    let path = store_matrix_path("read");
    let (store, clean) = store_fixture(0x5704e, &path);
    store.commit().unwrap();
    let reopened = neo::store::Store::open(&path).unwrap();
    let mut injected = 0u64;
    for trial in 0..STORE_READ_TRIALS {
        let seed = 0x0005_704e_2000 + trial;
        let plan =
            Arc::new(FaultPlan::new(seed).with_site(FaultSite::StoreRead, FaultSpec::once()));
        let scope = FaultScope::install(plan.clone());
        for (id, want) in &clean {
            match reopened.get(*id) {
                Ok(Some(got)) => assert_eq!(
                    &got, want,
                    "trial {trial} (seed {seed}): SILENT CORRUPTION reading {:?}",
                    id
                ),
                Ok(None) => panic!("trial {trial} (seed {seed}): clean record vanished"),
                Err(e) => assert_detected(&e, trial, seed),
            }
        }
        drop(scope);
        injected += plan.injected(FaultSite::StoreRead);
    }
    let _ = std::fs::remove_file(&path);
    assert!(
        injected >= STORE_READ_TRIALS / 2,
        "matrix is vacuous: only {injected} injections over {STORE_READ_TRIALS} trials"
    );
}

// --- fixtures -------------------------------------------------------------

fn store_matrix_path(tag: &str) -> std::path::PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!(
        "neo-fault-matrix-store-{tag}-{}.neostore",
        std::process::id()
    ));
    let _ = std::fs::remove_file(&p);
    p
}

/// A store with a deterministic mixed-kind record set (seed-recoverable
/// KSK material plus quarantine-only ciphertext/plan records), ready to
/// commit, paired with the exact bytes each record must serve.
fn store_fixture(
    seed: u64,
    path: &std::path::Path,
) -> (neo::store::Store, Vec<(neo::store::RecordId, Vec<u8>)>) {
    use neo::store::{RecordId, RecordKind, Store};
    let _ = std::fs::remove_file(path);
    let mut store = Store::open(path).unwrap();
    let mut clean = Vec::new();
    for (i, kind) in [
        RecordKind::SecretKey,
        RecordKind::HybridKsk,
        RecordKind::KlssKsk,
        RecordKind::ExecPlan,
        RecordKind::Ciphertext,
    ]
    .into_iter()
    .enumerate()
    {
        let h = neo::fault::splitmix64(seed ^ ((i as u64 + 1) << 12));
        let len = 32 + (h % 224) as usize;
        let payload: Vec<u8> = (0..len)
            .map(|j| (neo::fault::splitmix64(h ^ j as u64) & 0xFF) as u8)
            .collect();
        let id = RecordId {
            kind,
            tenant: 1,
            level: i as u64,
            aux: i as u64,
        };
        store.put(id, h, 0xF1F1, payload.clone());
        clean.push((id, payload));
    }
    (store, clean)
}

/// Reopens the store file and demands exact-or-classified for every
/// record: a served payload must be bit-identical to what was written;
/// anything else must be an absence or a typed error.
fn assert_store_sound(
    path: &std::path::Path,
    clean: &[(neo::store::RecordId, Vec<u8>)],
    trial: u64,
    seed: u64,
) {
    let store = neo::store::Store::open(path).unwrap();
    for (id, want) in clean {
        // Ok(None)/Err is classified: recoverable, quarantined, or lost tail.
        if let Ok(Some(got)) = store.get(*id) {
            assert_eq!(
                &got, want,
                "trial {trial} (seed {seed}): SILENT CORRUPTION in {:?}",
                id
            );
        }
    }
}

/// Engine seed shared by the engine-level matrices (clean baselines are
/// computed once per test against this seed).
fn engine_seed() -> u64 {
    20250
}

/// HMult → Rescale chain plus an independent HAdd, so one failing op
/// leaves a clean subset to complete.
fn batch_fixture(e: &FheEngine) -> (BatchProgram, Vec<Ciphertext>) {
    let mut prog = BatchProgram::new();
    let m = prog
        .try_push(BatchOp::HMult(Slot::Input(0), Slot::Input(1)))
        .unwrap();
    prog.try_push(BatchOp::Rescale(m)).unwrap();
    prog.try_push(BatchOp::HAdd(Slot::Input(0), Slot::Input(1)))
        .unwrap();
    let a = e.encrypt_f64(&[1.25, -0.75, 2.0], e.max_level()).unwrap();
    let b = e.encrypt_f64(&[0.5, 3.0, -1.5], e.max_level()).unwrap();
    (prog, vec![a, b])
}

fn unwrap_all(results: Vec<Result<Ciphertext, NeoError>>) -> Vec<Ciphertext> {
    results.into_iter().map(|r| r.unwrap()).collect()
}

/// Deterministic pseudo-random kernel DAG: 4–8 nodes with mixed
/// CUDA/TCU/memory work and forward edges.
fn random_graph(seed: u64) -> OpGraph {
    let h0 = neo::fault::splitmix64(seed);
    let mut g = OpGraph::new();
    let nodes = 4 + (h0 % 5) as usize;
    let mut ids: Vec<NodeId> = Vec::with_capacity(nodes);
    for i in 0..nodes {
        let h = neo::fault::splitmix64(seed ^ ((i as u64 + 1) << 8));
        let profile = KernelProfile::new(format!("k{i}"))
            .cuda_modmacs((h % 2048) as f64)
            .tcu_fp64_macs(((h >> 16) % 2048) as f64)
            .bytes(((h >> 32) % 4096) as f64, 0.0)
            .launches(1.0);
        let id = g.add(profile, false, i);
        if i > 0 && !h.is_multiple_of(3) {
            let from = ids[(h >> 48) as usize % i];
            g.depend(from, id);
        }
        ids.push(id);
    }
    g
}
