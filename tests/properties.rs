//! Property-based tests (proptest) on the core invariants:
//! NTT algebra, TCU-engine equivalence, base-conversion exactness,
//! encoder round-trips, and homomorphic correctness under random inputs.

use neo::ckks::encoding::Complex64;
use neo::ckks::{CkksContext, CkksParams, Encoder};
use neo::math::{BconvTable, BigUint, Modulus, RnsBasis};
use neo::ntt::{matrix, negacyclic_mul_schoolbook, radix2, NttPlan};
use neo::tcu::{Fp64TcuGemm, GemmEngine, Int8TcuGemm, ScalarGemm};
use proptest::prelude::*;
use rand::SeedableRng;

fn plan_256() -> NttPlan {
    let q = neo::math::primes::ntt_primes(36, 256, 1).unwrap()[0];
    NttPlan::new(q, 256).unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Forward then inverse radix-2 NTT is the identity.
    #[test]
    fn ntt_roundtrip(seed in any::<u64>()) {
        let plan = plan_256();
        let q = plan.modulus().value();
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let orig: Vec<u64> = (0..256).map(|_| rand::Rng::gen_range(&mut rng, 0..q)).collect();
        let mut x = orig.clone();
        radix2::forward(&plan, &mut x);
        radix2::inverse(&plan, &mut x);
        prop_assert_eq!(x, orig);
    }

    /// All three NTT algorithms agree on random inputs.
    #[test]
    fn ntt_algorithms_agree(seed in any::<u64>()) {
        let plan = plan_256();
        let q = plan.modulus().value();
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let a: Vec<u64> = (0..256).map(|_| rand::Rng::gen_range(&mut rng, 0..q)).collect();
        let mut r2 = a.clone();
        radix2::forward(&plan, &mut r2);
        let mut fs = a.clone();
        matrix::forward_four_step(&plan, &mut fs, &ScalarGemm);
        let mut r16 = a;
        matrix::forward_radix16(&plan, &mut r16, &ScalarGemm);
        prop_assert_eq!(&r2, &fs);
        prop_assert_eq!(&r2, &r16);
    }

    /// NTT convolution equals schoolbook negacyclic multiplication.
    #[test]
    fn convolution_theorem(seed in any::<u64>()) {
        let plan = plan_256();
        let m = *plan.modulus();
        let q = m.value();
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let a: Vec<u64> = (0..256).map(|_| rand::Rng::gen_range(&mut rng, 0..q)).collect();
        let b: Vec<u64> = (0..256).map(|_| rand::Rng::gen_range(&mut rng, 0..q)).collect();
        prop_assert_eq!(
            neo::ntt::negacyclic_mul(&plan, &a, &b),
            negacyclic_mul_schoolbook(&m, &a, &b)
        );
    }

    /// Scalar, FP64-TCU and INT8-TCU GEMMs are bit-identical on random
    /// matrices of random (odd) shapes.
    #[test]
    fn gemm_engines_agree(seed in any::<u64>(), m in 1usize..24, k in 1usize..20, n in 1usize..24) {
        let q = Modulus::new(neo::math::primes::ntt_primes(36, 64, 1).unwrap()[0]).unwrap();
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let a: Vec<u64> = (0..m * k).map(|_| rand::Rng::gen_range(&mut rng, 0..q.value())).collect();
        let b: Vec<u64> = (0..k * n).map(|_| rand::Rng::gen_range(&mut rng, 0..q.value())).collect();
        let mut c0 = vec![0u64; m * n];
        let mut c1 = vec![0u64; m * n];
        let mut c2 = vec![0u64; m * n];
        ScalarGemm.gemm(&q, &a, &b, m, k, n, &mut c0);
        Fp64TcuGemm::for_word_size(36).gemm(&q, &a, &b, m, k, n, &mut c1);
        Int8TcuGemm::for_word_size(36).gemm(&q, &a, &b, m, k, n, &mut c2);
        prop_assert_eq!(&c0, &c1);
        prop_assert_eq!(&c0, &c2);
    }

    /// Exact base conversion recovers the centered value for anything
    /// comfortably inside the safe zone (|v| < 3Q/8).
    #[test]
    fn bconv_exact_recovers(v in any::<u64>()) {
        let src = RnsBasis::new(&neo::math::primes::ntt_primes(30, 16, 3).unwrap()).unwrap();
        let dst = RnsBasis::new(&neo::math::primes::ntt_primes(34, 16, 3).unwrap()).unwrap();
        let table = BconvTable::new(&src, &dst).unwrap();
        // Fold v into [0, 3Q/8): Q here is ~90 bits so any u64 is tiny.
        let big = BigUint::from_u64(v);
        let x: Vec<u64> = src.moduli().iter().map(|m| big.rem_u64(m.value())).collect();
        let mut out = vec![0u64; 3];
        table.convert_exact_coeff(&x, &mut out);
        let want: Vec<u64> = dst.moduli().iter().map(|m| big.rem_u64(m.value())).collect();
        prop_assert_eq!(out, want);
    }

    /// Encode/decode round-trips random complex vectors within CKKS
    /// approximation error.
    #[test]
    fn encoder_roundtrip(seed in any::<u64>()) {
        let ctx = CkksContext::new(CkksParams::test_tiny()).unwrap();
        let enc = Encoder::new(ctx.degree());
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let vals: Vec<Complex64> = (0..enc.slots())
            .map(|_| Complex64::new(
                rand::Rng::gen_range(&mut rng, -2.0..2.0),
                rand::Rng::gen_range(&mut rng, -2.0..2.0),
            ))
            .collect();
        let pt = enc.encode(&ctx, &vals, ctx.params().scale(), 2);
        let out = enc.decode(&ctx, &pt);
        for (a, b) in vals.iter().zip(&out) {
            prop_assert!((*a - *b).abs() < 1e-5, "{:?} vs {:?}", a, b);
        }
    }

    /// Homomorphic addition is exact up to encryption noise for random
    /// plaintext vectors.
    #[test]
    fn homomorphic_addition(seed in any::<u64>()) {
        use neo::ckks::keys::{KeyChest, PublicKey, SecretKey};
        use neo::ckks::ops;
        use std::sync::Arc;
        let ctx = Arc::new(CkksContext::new(CkksParams::test_tiny()).unwrap());
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let sk = SecretKey::generate(&ctx, &mut rng);
        let pk = PublicKey::generate(&ctx, &sk, &mut rng);
        let chest = KeyChest::new(ctx.clone(), sk, seed.wrapping_add(1));
        let enc = Encoder::new(ctx.degree());
        let a: Vec<Complex64> = (0..enc.slots())
            .map(|_| Complex64::new(rand::Rng::gen_range(&mut rng, -1.0..1.0), 0.0))
            .collect();
        let b: Vec<Complex64> = (0..enc.slots())
            .map(|_| Complex64::new(rand::Rng::gen_range(&mut rng, -1.0..1.0), 0.0))
            .collect();
        let scale = ctx.params().scale();
        let ca = ops::try_encrypt(&ctx, &pk, &enc.encode(&ctx, &a, scale, 2), &mut rng).unwrap();
        let cb = ops::try_encrypt(&ctx, &pk, &enc.encode(&ctx, &b, scale, 2), &mut rng).unwrap();
        let sum = ops::try_hadd(&ctx, &ca, &cb).unwrap();
        let out = enc.decode(&ctx, &ops::try_decrypt(&ctx, chest.secret_key(), &sum).unwrap());
        for i in 0..enc.slots() {
            prop_assert!((out[i] - (a[i] + b[i])).abs() < 1e-4);
        }
    }
}
