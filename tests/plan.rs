//! End-to-end planner properties: planned execution is bit-identical to
//! default-config execution across both key-switching methods on random
//! legal programs, the plan cache round-trips, and backend-mismatched
//! plans are rejected with a typed error.

use neo::ckks::{BatchProgram, Ciphertext, CkksParams, ExecPlan, FheEngine, KsMethod, NeoError};
use neo::gpu_sim::DeviceModel;
use neo::plan::{PlanStore, Planner};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::Arc;

fn unwrap_all(results: Vec<Result<Ciphertext, NeoError>>) -> Vec<Ciphertext> {
    results
        .into_iter()
        .collect::<Result<Vec<_>, _>>()
        .expect("all ops succeed")
}

/// Random legal programs, both KS methods: executing under the
/// planner's chosen plan (fusion/stream/verify knobs live) produces the
/// same ciphertext bits as the default serial configuration with the
/// same method — the only knob that changes bits.
#[test]
fn planned_execution_bit_identical_on_random_programs() {
    let params = CkksParams::test_tiny();
    let dev = DeviceModel::a100();
    for method in [KsMethod::Hybrid, KsMethod::Klss] {
        for seed in [3u64, 17, 91] {
            let mut rng = StdRng::seed_from_u64(seed);
            let engine = FheEngine::new(params.clone(), seed).expect("engine");
            let level = engine.max_level();
            let n_inputs = 3usize;
            let prog =
                BatchProgram::random(&mut rng, n_inputs, 8, level, engine.context().degree());
            let inputs: Vec<Ciphertext> = (0..n_inputs)
                .map(|i| {
                    let x = (i as f64).mul_add(0.3, -0.2);
                    engine.encrypt_f64(&[x, x / 2.0], level).expect("encrypt")
                })
                .collect();
            engine.warm_program(&prog, level).expect("warm");

            // Default-config execution: same method, serial, no plan knobs.
            let engine = engine
                .with_plan(&ExecPlan::pinned(&params, method))
                .expect("pin");
            let reference = unwrap_all(
                engine
                    .execute_batch_planned(&prog, &inputs)
                    .expect("reference"),
            );

            // The planner's chosen plan, restricted to this method.
            let planner = Planner::new(params.clone(), dev.clone()).with_methods(vec![method]);
            let plan = planner.plan_program(&prog, level).expect("plan");
            assert_eq!(plan.method, method);
            let engine = engine.with_plan(&plan).expect("install");
            let planned = unwrap_all(
                engine
                    .execute_batch_planned(&prog, &inputs)
                    .expect("planned"),
            );
            assert_eq!(
                planned, reference,
                "seed {seed} {method:?}: planned execution diverged from default config"
            );

            // Force the parallel executor path regardless of what the
            // sweep picked: streams/fusion must never change bits.
            let forced = ExecPlan {
                streams: 4,
                fusion: true,
                ..plan
            };
            let engine = engine.with_plan(&forced).expect("install forced");
            let parallel = unwrap_all(
                engine
                    .execute_batch_planned(&prog, &inputs)
                    .expect("forced"),
            );
            assert_eq!(
                parallel, reference,
                "seed {seed} {method:?}: 4-stream execution diverged from serial"
            );
        }
    }
}

/// PlanStore round-trip: the same (params, shape) key hits; perturbing
/// the program shape or the parameters misses.
#[test]
fn plan_store_round_trips_on_random_programs() {
    let params = CkksParams::test_tiny();
    let store = Arc::new(PlanStore::new());
    let planner = Planner::new(params.clone(), DeviceModel::a100()).with_store(Arc::clone(&store));
    let mut rng = StdRng::seed_from_u64(29);
    let level = params.max_level;
    let prog = BatchProgram::random(&mut rng, 2, 6, level, 1 << params.log_n);

    let first = planner.plan_program(&prog, level).expect("plan");
    assert_eq!((store.hits(), store.misses()), (0, 1));
    let second = planner.plan_program(&prog, level).expect("replan");
    assert_eq!(first, second, "cache must return the identical plan");
    assert_eq!((store.hits(), store.misses()), (1, 1));

    // Same ops at a different level: different shape, fresh sweep.
    planner.plan_program(&prog, level - 1).expect("perturbed");
    assert_eq!(store.misses(), 2, "perturbed shape must miss");

    // Same shape under different params: different fingerprint.
    let other = CkksParams::test_small();
    let other_planner =
        Planner::new(other.clone(), DeviceModel::a100()).with_store(Arc::clone(&store));
    other_planner
        .plan_program(&prog, level)
        .expect("other params");
    assert_eq!(store.misses(), 3, "re-parameterization must re-key");
    assert_eq!(store.len(), 3);
}

/// A plan tuned on one backend must not install on a session running
/// another: `with_plan` fails with `ParameterMismatch`.
#[test]
fn backend_mismatched_plan_rejected() {
    let params = CkksParams::test_tiny();
    let engine = FheEngine::new(params.clone(), 5).expect("engine");
    let mut plan = ExecPlan::unplanned(&params);
    plan.backend = match plan.backend {
        neo::ckks::BackendKind::Portable => neo::ckks::BackendKind::Simd,
        neo::ckks::BackendKind::Simd => neo::ckks::BackendKind::Portable,
    };
    let err = match engine.with_plan(&plan) {
        Ok(_) => panic!("backend-mismatched plan must be rejected"),
        Err(e) => e,
    };
    assert_eq!(err.kind().name(), "parameter_mismatch");
}

/// `execute_batch_planned` without an installed plan is a typed error,
/// not a silent fallback.
#[test]
fn planned_execution_requires_a_plan() {
    let params = CkksParams::test_tiny();
    let engine = FheEngine::new(params, 6).expect("engine");
    let err = engine
        .execute_batch_planned(&BatchProgram::new(), &[])
        .expect_err("no plan installed");
    assert_eq!(err.kind().name(), "invalid_params");
}
