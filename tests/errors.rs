//! Error-path coverage of the fallible CKKS API: every documented refusal
//! returns its typed [`NeoError`] instead of panicking, the engine's
//! policy guardrails fire, and batch execution isolates per-op failures
//! while keeping the valid subset bit-identical to a clean run.

use neo::ckks::ops;
use neo::prelude::*;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::Arc;

fn engine() -> FheEngine {
    FheEngine::new(CkksParams::test_tiny(), 7).unwrap()
}

#[test]
fn rescale_at_level_zero_is_chain_exhausted() {
    let e = engine();
    let mut ct = e.encrypt_f64(&[0.5], 1).unwrap();
    ct = e.rescale(&ct).unwrap();
    assert_eq!(ct.level(), 0);
    let err = e.rescale(&ct).unwrap_err();
    assert_eq!(err.kind(), ErrorKind::ModulusChainExhausted);
    let err = e.double_rescale(&ct).unwrap_err();
    assert_eq!(err.kind(), ErrorKind::ModulusChainExhausted);
}

#[test]
fn level_mismatch_without_auto_align() {
    let mut e = engine();
    e.set_policy(OpPolicy {
        auto_align_levels: false,
        ..OpPolicy::default()
    });
    let a = e.encrypt_f64(&[1.0], 3).unwrap();
    let b = e.encrypt_f64(&[1.0], 2).unwrap();
    for err in [
        e.hadd(&a, &b).unwrap_err(),
        e.hsub(&a, &b).unwrap_err(),
        e.hmult(&a, &b).unwrap_err(),
    ] {
        assert_eq!(err.kind(), ErrorKind::LevelMismatch);
    }
    // The default policy aligns instead of refusing.
    e.set_policy(OpPolicy::default());
    assert_eq!(e.hadd(&a, &b).unwrap().level(), 2);
}

#[test]
fn scale_mismatch_is_typed() {
    let e = engine();
    let a = e.encrypt_f64(&[0.5], 3).unwrap();
    let sq = e.hmult(&a, &a).unwrap(); // scale Δ²
    let err = ops::try_hadd(e.context(), &sq, &a).unwrap_err();
    assert_eq!(err.kind(), ErrorKind::ScaleMismatch);
}

#[test]
fn level_reduce_cannot_raise() {
    let e = engine();
    let a = e.encrypt_f64(&[0.5], 2).unwrap();
    let err = e.level_reduce(&a, 3).unwrap_err();
    assert_eq!(err.kind(), ErrorKind::ParameterMismatch);
}

#[test]
fn encode_overflow_and_level_bounds_are_invalid_params() {
    let e = engine();
    let too_many = vec![0.1; e.slots() + 1];
    assert_eq!(
        e.encode_f64(&too_many, 3).unwrap_err().kind(),
        ErrorKind::InvalidParams
    );
    assert_eq!(
        e.encrypt_f64(&[0.1], e.max_level() + 1).unwrap_err().kind(),
        ErrorKind::ParameterMismatch
    );
}

#[test]
fn noise_floor_guardrail_fires() {
    let mut e = engine();
    e.set_policy(OpPolicy {
        min_noise_budget_bits: 1e6, // impossible floor: everything refused
        ..OpPolicy::default()
    });
    let a = e.encrypt_f64(&[0.5], 3).unwrap();
    let err = e.hmult(&a, &a).unwrap_err();
    assert_eq!(err.kind(), ErrorKind::NoiseBudgetExhausted);
}

#[test]
fn warm_key_policy_refuses_cold_keys() {
    let mut e = engine();
    e.set_policy(OpPolicy {
        require_warm_keys: true,
        ..OpPolicy::default()
    });
    let a = e.encrypt_f64(&[0.5], 3).unwrap();
    let err = e.hrotate(&a, 1).unwrap_err();
    assert_eq!(err.kind(), ErrorKind::KeySwitchKeyMissing);
}

#[test]
fn error_counters_tally_by_kind() {
    let e = engine();
    let a = e.encrypt_f64(&[0.5], 1).unwrap();
    let low = e.rescale(&a).unwrap();
    let before = neo::trace::error_count(ErrorKind::ModulusChainExhausted.name());
    let _ = e.rescale(&low).unwrap_err();
    // Other tests in this binary may tally concurrently; monotonic check.
    let after = neo::trace::error_count(ErrorKind::ModulusChainExhausted.name());
    assert!(after > before);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Binary ops on operands with arbitrary (possibly mismatched)
    /// levels either succeed or return one of the documented kinds —
    /// they never panic.
    #[test]
    fn binary_ops_never_panic(la in 0usize..=5, lb in 0usize..=5, seed in any::<u64>()) {
        let mut e = FheEngine::new(CkksParams::test_tiny(), seed % 32).unwrap();
        e.set_policy(OpPolicy { auto_align_levels: false, ..OpPolicy::default() });
        let a = e.encrypt_f64(&[0.5, -0.25], la).unwrap();
        let b = e.encrypt_f64(&[0.125, 1.0], lb).unwrap();
        for r in [e.hadd(&a, &b), e.hsub(&a, &b), e.hmult(&a, &b)] {
            match r {
                // Mismatched levels are always refused as LevelMismatch;
                // at equal-but-low levels hmult may instead refuse with
                // NoiseBudgetExhausted (a Δ² product at the chain's tail
                // has no budget left). Nothing panics.
                Err(err) if la != lb => {
                    prop_assert_eq!(err.kind(), ErrorKind::LevelMismatch);
                }
                Err(err) => {
                    prop_assert_eq!(err.kind(), ErrorKind::NoiseBudgetExhausted);
                }
                Ok(_) => prop_assert_eq!(la, lb),
            }
        }
    }

    /// Rescale chains refuse exactly at chain exhaustion, with the
    /// documented kind, at every starting level.
    #[test]
    fn rescale_chain_fails_exactly_at_zero(start in 0usize..=5) {
        let e = engine();
        let mut ct = e.encrypt_f64(&[0.5], start).unwrap();
        for _ in 0..start {
            ct = e.rescale(&ct).unwrap();
        }
        prop_assert_eq!(ct.level(), 0);
        prop_assert_eq!(
            e.rescale(&ct).unwrap_err().kind(),
            ErrorKind::ModulusChainExhausted
        );
    }
}

fn chest_and_inputs(seed: u64, count: usize) -> (KeyChest, Vec<Ciphertext>) {
    let ctx = Arc::new(CkksContext::new(CkksParams::test_tiny()).unwrap());
    let mut rng = StdRng::seed_from_u64(seed);
    let sk = SecretKey::generate(&ctx, &mut rng);
    let pk = PublicKey::generate(&ctx, &sk, &mut rng);
    let enc = Encoder::new(ctx.degree());
    let level = ctx.params().max_level;
    let scale = ctx.params().scale();
    let inputs: Vec<_> = (0..count)
        .map(|i| {
            let vals: Vec<Complex64> = (0..enc.slots())
                .map(|j| Complex64::new(((i * 29 + j * 3) % 17) as f64 / 17.0 - 0.3, 0.0))
                .collect();
            let pt = enc.encode(&ctx, &vals, scale, level);
            ops::try_encrypt(&ctx, &pk, &pt, &mut rng).unwrap()
        })
        .collect();
    (KeyChest::new(ctx, sk, seed ^ 0xbad5eed), inputs)
}

/// Acceptance criterion: a batch with injected invalid operations still
/// returns results for every valid operation — bit-identical to a run
/// without the invalid ops — plus a structured error for the failed op
/// and `PoisonedInput` for its dependents.
#[test]
fn batch_isolates_injected_failures() {
    for parallel in [false, true] {
        let (chest, inputs) = chest_and_inputs(5, 2);

        // The clean program: a diamond of valid work.
        let mut clean = BatchProgram::new();
        let m = clean
            .try_push(BatchOp::HMult(Slot::Input(0), Slot::Input(1)))
            .unwrap();
        let r = clean.try_push(BatchOp::Rescale(m)).unwrap();
        let left = clean.try_push(BatchOp::HRotate(r, 2)).unwrap();
        let right = clean.try_push(BatchOp::HRotate(r, 3)).unwrap();
        clean.try_push(BatchOp::HAdd(left, right)).unwrap();
        let n_clean = clean.ops.len();

        // Same program plus injected invalid work appended at the end:
        // a Δ² product HAdd-ed to a Δ input (scale mismatch), and a
        // rotation of that failed sum (poisoned downstream).
        let mut dirty = clean.clone();
        let sq = dirty
            .try_push(BatchOp::HMult(Slot::Input(0), Slot::Input(0)))
            .unwrap();
        let bad = dirty.try_push(BatchOp::HAdd(sq, Slot::Input(1))).unwrap();
        let poisoned = dirty.try_push(BatchOp::HRotate(bad, 1)).unwrap();

        let want = clean
            .execute(&chest, &inputs, KsMethod::Klss, parallel)
            .unwrap();
        let got = dirty
            .execute(&chest, &inputs, KsMethod::Klss, parallel)
            .unwrap();
        assert_eq!(got.len(), n_clean + 3);

        // Every valid op still produced its result, bit-identical.
        for (i, (w, g)) in want.iter().zip(&got).enumerate() {
            assert_eq!(
                w.as_ref().unwrap(),
                g.as_ref().unwrap(),
                "valid op {i} diverged from the clean run (parallel={parallel})"
            );
        }
        // The injected square itself is fine; the mismatched add carries
        // its typed error; the dependent rotation is poisoned with the
        // upstream index.
        let (sq_i, bad_i, poisoned_i) = match (sq, bad, poisoned) {
            (Slot::Op(a), Slot::Op(b), Slot::Op(c)) => (a, b, c),
            _ => unreachable!(),
        };
        assert!(got[sq_i].is_ok());
        assert_eq!(
            got[bad_i].as_ref().unwrap_err().kind(),
            ErrorKind::ScaleMismatch
        );
        match got[poisoned_i].as_ref().unwrap_err() {
            NeoError::PoisonedInput { op_index, upstream } => {
                assert_eq!(*op_index, poisoned_i);
                assert_eq!(*upstream, bad_i);
            }
            other => panic!("expected PoisonedInput, got {other:?}"),
        }
    }
}

/// Program-wide problems surface on the outer `Result`.
#[test]
fn batch_outer_errors_are_typed() {
    let (chest, inputs) = chest_and_inputs(6, 1);
    let mut prog = BatchProgram::new();
    prog.try_push(BatchOp::HRotate(Slot::Input(3), 1)).unwrap();
    let err = prog
        .execute(&chest, &inputs, KsMethod::Klss, false)
        .unwrap_err();
    assert_eq!(err.kind(), ErrorKind::ParameterMismatch);

    let err = BatchProgram::new()
        .try_push(BatchOp::Rescale(Slot::Op(0)))
        .unwrap_err();
    assert_eq!(err.kind(), ErrorKind::InvalidParams);
}
