//! Cross-crate integration tests: the full stack from fragment emulation
//! up through CKKS operations and the performance model.

use neo::ckks::encoding::Complex64;
use neo::ckks::keys::{KeyChest, PublicKey, SecretKey};
use neo::ckks::{ops, CkksContext, CkksParams, Encoder, KsMethod, ParamSet};
use neo::gpu_sim::DeviceModel;
use neo::kernels::bconv;
use neo::math::{BconvTable, RnsBasis};
use neo::ntt::{matrix, radix2, NttPlan};
use neo::tcu::{Fp64TcuGemm, ScalarGemm};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::Arc;

/// The TCU-emulated radix-16 NTT slots straight into polynomial
/// multiplication and produces the same ciphertext-level results as the
/// radix-2 reference.
#[test]
fn tcu_ntt_is_a_drop_in_replacement() {
    let n = 256;
    let q = neo::math::primes::ntt_primes(36, n, 1).unwrap()[0];
    let plan = NttPlan::new(q, n).unwrap();
    let m = plan.modulus();
    let mut rng = StdRng::seed_from_u64(1);
    let a: Vec<u64> = (0..n).map(|_| rng.gen_range(0..q)).collect();
    let b: Vec<u64> = (0..n).map(|_| rng.gen_range(0..q)).collect();
    // Multiply via the TCU-emulated matrix NTT.
    let engine = Fp64TcuGemm::for_word_size(36);
    let mut fa = a.clone();
    let mut fb = b.clone();
    matrix::forward_radix16(&plan, &mut fa, &engine);
    matrix::forward_radix16(&plan, &mut fb, &engine);
    for (x, &y) in fa.iter_mut().zip(&fb) {
        *x = m.mul(*x, y);
    }
    matrix::inverse_radix16(&plan, &mut fa, &engine);
    // Reference via radix-2.
    let mut ra = a.clone();
    let mut rb = b.clone();
    radix2::forward(&plan, &mut ra);
    radix2::forward(&plan, &mut rb);
    for (x, &y) in ra.iter_mut().zip(&rb) {
        *x = m.mul(*x, y);
    }
    radix2::inverse(&plan, &mut ra);
    assert_eq!(fa, ra);
}

/// The kernel crate's matrix BConv applied to real ciphertext digit data
/// agrees with the math crate's element-wise conversion (the path the
/// CKKS key switch uses).
#[test]
fn kernel_bconv_matches_ckks_mod_up_path() {
    let ctx = CkksContext::new(CkksParams::test_tiny()).unwrap();
    let digit_primes = ctx.q_primes()[..2].to_vec();
    let t_primes = ctx.t_primes().to_vec();
    let src = RnsBasis::new(&digit_primes).unwrap();
    let dst = RnsBasis::new(&t_primes).unwrap();
    let table = BconvTable::new(&src, &dst).unwrap();
    let mut rng = StdRng::seed_from_u64(2);
    let input: Vec<Vec<u64>> = digit_primes
        .iter()
        .map(|&q| (0..ctx.degree()).map(|_| rng.gen_range(0..q)).collect())
        .collect();
    let elementwise = bconv::bconv_original(&table, &input);
    let matrix_fp64 = bconv::bconv_matrix_fp64(&table, &input);
    assert_eq!(elementwise, matrix_fp64);
}

/// Depth-3 computation mixing every operation type, against a plaintext
/// oracle: ((x*y) rotated + x) * conj(x).
#[test]
fn mixed_operation_pipeline() {
    let ctx = Arc::new(CkksContext::new(CkksParams::test_tiny()).unwrap());
    let mut rng = StdRng::seed_from_u64(3);
    let sk = SecretKey::generate(&ctx, &mut rng);
    let pk = PublicKey::generate(&ctx, &sk, &mut rng);
    let chest = KeyChest::new(ctx.clone(), sk, 4);
    let enc = Encoder::new(ctx.degree());
    let slots = enc.slots();
    let x: Vec<Complex64> = (0..slots)
        .map(|i| Complex64::new(0.5 * (i as f64 * 0.2).cos(), 0.1))
        .collect();
    let y: Vec<Complex64> = (0..slots)
        .map(|i| Complex64::new(0.3, 0.4 * (i as f64 * 0.15).sin()))
        .collect();
    let scale = ctx.params().scale();
    let ct_x = ops::try_encrypt(&ctx, &pk, &enc.encode(&ctx, &x, scale, 5), &mut rng).unwrap();
    let ct_y = ops::try_encrypt(&ctx, &pk, &enc.encode(&ctx, &y, scale, 5), &mut rng).unwrap();

    let xy = ops::try_rescale(
        &ctx,
        &ops::try_hmult(&chest, &ct_x, &ct_y, KsMethod::Klss).unwrap(),
    )
    .unwrap();
    let rot = ops::try_hrotate(&chest, &xy, 3, KsMethod::Hybrid).unwrap();
    let x_low = ops::try_level_reduce(&ct_x, rot.level()).unwrap();
    let sum = ops::try_hadd(&ctx, &rot, &x_low).unwrap();
    let conj = ops::try_hconjugate(&chest, &x_low, KsMethod::Klss).unwrap();
    let out_ct = ops::try_rescale(
        &ctx,
        &ops::try_hmult(&chest, &sum, &conj, KsMethod::Klss).unwrap(),
    )
    .unwrap();

    let got = enc.decode(
        &ctx,
        &ops::try_decrypt(&ctx, chest.secret_key(), &out_ct).unwrap(),
    );
    for i in 0..slots {
        let want = (x[(i + 3) % slots] * y[(i + 3) % slots] + x[i]) * x[i].conj();
        let err = (got[i] - want).abs();
        assert!(
            err < 5e-2,
            "slot {i}: {:?} vs {want:?} (err {err:.2e})",
            got[i]
        );
    }
}

/// The cost model is internally consistent with the paper's headline:
/// Neo beats TensorFHE and HEonGPU at every level.
#[test]
fn cost_model_headline_consistency() {
    use neo::ckks::cost::{op_time_us, CostConfig, Operation};
    let dev = DeviceModel::a100();
    let (pa, pc, pe) = (
        ParamSet::A.params(),
        ParamSet::C.params(),
        ParamSet::E.params(),
    );
    for l in [11usize, 23, 35] {
        let neo_t = op_time_us(&dev, &pc, l, Operation::HMult, &CostConfig::neo());
        let tf = op_time_us(&dev, &pa, l, Operation::HMult, &CostConfig::tensorfhe());
        let he = op_time_us(&dev, &pe, l, Operation::HMult, &CostConfig::heongpu());
        assert!(neo_t < tf, "level {l}: Neo {neo_t} !< TensorFHE {tf}");
        assert!(neo_t < he, "level {l}: Neo {neo_t} !< HEonGPU {he}");
    }
}

/// Set-C KLSS geometry invariants used throughout the paper.
#[test]
fn paper_geometry_invariants() {
    let p = ParamSet::C.params();
    assert_eq!((p.alpha(), p.alpha_prime()), (4, 8));
    assert_eq!((p.beta(35), p.beta_tilde(35)), (9, 8));
    assert_eq!(p.n(), 1 << 16);
    // Booth complexities of Section 3.4.
    assert_eq!(neo::tcu::booth_complexity_fp64(36), 3);
    assert_eq!(neo::tcu::booth_complexity_int8(36), 25);
    assert_eq!(neo::tcu::booth_complexity_fp64(48), 4);
    assert_eq!(neo::tcu::booth_complexity_int8(48), 36);
}

/// Engines are interchangeable in a single GEMM (spot check at the root
/// so the umbrella crate exercises the whole dependency chain).
#[test]
fn umbrella_reexports_work_together() {
    use neo::tcu::GemmEngine;
    let q = neo::math::Modulus::new(neo::math::primes::ntt_primes(36, 64, 1).unwrap()[0]).unwrap();
    let a = vec![3u64; 8 * 4];
    let b = vec![5u64; 4 * 8];
    let mut c1 = vec![0u64; 64];
    let mut c2 = vec![0u64; 64];
    ScalarGemm.gemm(&q, &a, &b, 8, 4, 8, &mut c1);
    Fp64TcuGemm::for_word_size(36).gemm(&q, &a, &b, 8, 4, 8, &mut c2);
    assert_eq!(c1, c2);
    assert!(c1.iter().all(|&v| v == 60));
}
