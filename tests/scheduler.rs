//! Cross-crate scheduler tests: the `neo-sched` discrete-event simulator
//! against the closed-form `neo-gpu-sim` baseline, and the rayon batch
//! executor against serial execution on real ciphertexts.

use neo::ckks::batch::{BatchOp, BatchProgram, Slot};
use neo::ckks::cost::{op_profiles, CostConfig, Operation};
use neo::ckks::encoding::Complex64;
use neo::ckks::keys::{KeyChest, PublicKey, SecretKey};
use neo::ckks::sched::{batch_op_graph, op_graph};
use neo::ckks::{ops, CkksContext, CkksParams, Encoder, KsMethod, ParamSet};
use neo::gpu_sim::{DeviceModel, ExecConfig};
use neo::sched::{simulate, simulate_best, SimConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::Arc;

/// At one stream the simulated makespan equals the closed-form serial
/// model `Σlaunches·launch_s + max(Σcuda+Σtcu, Σmem)` — the simulator
/// and the analytic baseline price identical work.
#[test]
fn one_stream_equals_serial_model() {
    let dev = DeviceModel::a100();
    let p = ParamSet::C.params();
    for cfg in [CostConfig::neo(), CostConfig::tensorfhe()] {
        for op in [Operation::HMult, Operation::HRotate, Operation::Rescale] {
            for level in [10usize, 35] {
                let g = op_graph(&p, level, op, &cfg);
                let serial =
                    dev.sequence_time_s(&op_profiles(&p, level, op, &cfg), &ExecConfig::naive());
                let sim = simulate(&g, &dev, SimConfig::streams(1));
                let rel = (sim.makespan_s - serial).abs() / serial;
                assert!(
                    rel < 1e-9,
                    "{op:?} level {level}: simulated {} vs serial {} (rel {rel:.2e})",
                    sim.makespan_s,
                    serial
                );
            }
        }
    }
}

/// The default-config simulated makespan lands inside the eta model's
/// compute envelope `[max(Σcuda, Σtcu), Σcuda + Σtcu]` (plus prologue):
/// overlap can hide at most the shorter engine's phase.
#[test]
fn default_config_within_eta_envelope() {
    let dev = DeviceModel::a100();
    let p = ParamSet::C.params();
    let cfg = CostConfig::neo();
    let g = op_graph(&p, 35, Operation::HMult, &cfg);
    let sums = dev.sequence_sums(&op_profiles(&p, 35, Operation::HMult, &cfg));
    let prologue = g.launch_prologue_s(&dev);
    let sim = simulate_best(&g, &dev, SimConfig::default().streams);
    let floor = prologue + sums.overlap_floor_s().max(sums.mem_s);
    let ceiling = prologue + sums.serial_compute_s().max(sums.mem_s);
    assert!(
        sim.makespan_s >= floor - 1e-12 && sim.makespan_s <= ceiling + 1e-12,
        "makespan {} outside [{}, {}]",
        sim.makespan_s,
        floor,
        ceiling
    );
}

/// Acceptance criterion: >1.2x modeled speedup at 4 streams on the KLSS
/// hmult pipeline (a batch of independent HMults, which is what
/// multi-stream execution overlaps).
#[test]
fn four_streams_speed_up_klss_hmult() {
    let dev = DeviceModel::a100();
    let p = ParamSet::C.params();
    let cfg = CostConfig::neo();
    assert_eq!(cfg.method, KsMethod::Klss);
    let g = batch_op_graph(&p, 35, Operation::HMult, &cfg, 4);
    let serial = simulate(&g, &dev, SimConfig::streams(1)).makespan_s;
    let four = simulate_best(&g, &dev, 4).makespan_s;
    let speedup = serial / four;
    assert!(
        speedup > 1.2,
        "4-stream speedup {speedup:.3} (serial {serial:.4}s, 4-stream {four:.4}s)"
    );
}

/// Simulated makespan never beats the critical-path or HBM lower bounds
/// at any stream count, and the best-of-N schedule never loses to the
/// serial sum (a forced multi-stream split of a chain may, legitimately:
/// cross-stream syncs cost time).
#[test]
fn makespan_bounds_hold_on_ckks_graphs() {
    let dev = DeviceModel::a100();
    let p = ParamSet::C.params();
    let cfg = CostConfig::neo();
    let g = batch_op_graph(&p, 20, Operation::HRotate, &cfg, 3);
    let serial = simulate(&g, &dev, SimConfig::streams(1)).makespan_s;
    for streams in 1..=6 {
        let sim = simulate(&g, &dev, SimConfig::streams(streams));
        assert!(sim.makespan_s >= g.critical_path_s(&dev) - 1e-12);
        assert!(sim.makespan_s >= g.memory_floor_s(&dev) - 1e-12);
        let best = simulate_best(&g, &dev, streams);
        assert!(best.makespan_s <= serial + 1e-12, "streams {streams}");
    }
}

/// Fusing the element-wise chains never increases the simulated makespan
/// on the real HMult pipeline.
#[test]
fn fusion_helps_or_is_neutral() {
    let dev = DeviceModel::a100();
    let p = ParamSet::C.params();
    let cfg = CostConfig::neo();
    let g = batch_op_graph(&p, 35, Operation::HMult, &cfg, 2);
    let (fused, stats) = g.fuse_elementwise();
    assert!(stats.nodes_after < stats.nodes_before);
    let before = simulate_best(&g, &dev, 4).makespan_s;
    let after = simulate_best(&fused, &dev, 4).makespan_s;
    assert!(
        after <= before + 1e-12,
        "fusion regressed: {after} vs {before}"
    );
}

fn chest_and_inputs(seed: u64, count: usize) -> (KeyChest, Vec<neo::ckks::Ciphertext>) {
    let ctx = Arc::new(CkksContext::new(CkksParams::test_tiny()).unwrap());
    let mut rng = StdRng::seed_from_u64(seed);
    let sk = SecretKey::generate(&ctx, &mut rng);
    let pk = PublicKey::generate(&ctx, &sk, &mut rng);
    let enc = Encoder::new(ctx.degree());
    let level = ctx.params().max_level;
    let scale = ctx.params().scale();
    let inputs: Vec<_> = (0..count)
        .map(|i| {
            let vals: Vec<Complex64> = (0..enc.slots())
                .map(|j| Complex64::new(((i * 31 + j * 7) % 13) as f64 / 13.0 - 0.4, 0.0))
                .collect();
            let pt = enc.encode(&ctx, &vals, scale, level);
            ops::try_encrypt(&ctx, &pk, &pt, &mut rng).unwrap()
        })
        .collect();
    (KeyChest::new(ctx, sk, seed ^ 0x5eed), inputs)
}

/// Acceptance criterion: the rayon batch executor is bit-identical to
/// serial execution on randomized programs of hmult/hrotate/rescale/hadd
/// over real ciphertexts, for both key-switching methods.
#[test]
fn batch_executor_bit_identical_to_serial() {
    for (seed, method) in [(7u64, KsMethod::Klss), (8, KsMethod::Hybrid)] {
        let (chest, inputs) = chest_and_inputs(seed, 3);
        let level = inputs[0].level();
        let mut rng = StdRng::seed_from_u64(seed * 1000 + 1);
        for round in 0..3 {
            let prog =
                BatchProgram::random(&mut rng, inputs.len(), 10, level, chest.context().degree());
            let serial = prog.execute(&chest, &inputs, method, false).unwrap();
            let parallel = prog.execute(&chest, &inputs, method, true).unwrap();
            assert_eq!(
                serial, parallel,
                "round {round} {method:?}: parallel output diverged"
            );
            assert!(serial.iter().all(|r| r.is_ok()));
        }
    }
}

/// A hand-built diamond program: parallel branches reconverge and the
/// executor returns the same ciphertexts either way.
#[test]
fn batch_executor_diamond_program() {
    let (chest, inputs) = chest_and_inputs(11, 2);
    let mut prog = BatchProgram::new();
    let m = prog
        .try_push(BatchOp::HMult(Slot::Input(0), Slot::Input(1)))
        .unwrap();
    let r = prog.try_push(BatchOp::Rescale(m)).unwrap();
    let left = prog.try_push(BatchOp::HRotate(r, 3)).unwrap();
    let right = prog.try_push(BatchOp::HRotate(r, 5)).unwrap();
    prog.try_push(BatchOp::HAdd(left, right)).unwrap();
    let serial = prog
        .execute(&chest, &inputs, KsMethod::Klss, false)
        .unwrap();
    let parallel = prog.execute(&chest, &inputs, KsMethod::Klss, true).unwrap();
    assert_eq!(serial, parallel);
    assert_eq!(serial.len(), 5);
    assert!(serial.iter().all(|r| r.is_ok()));
}
