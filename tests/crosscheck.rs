//! Analytic-vs-measured telemetry cross-checks at workspace level: the
//! `neo-trace` counters recorded by the *functional* kernels must match the
//! closed-form work counts that drive the performance model — per kernel
//! (`neo::kernels::crosscheck`) and at the scheme level against the Table 2
//! complexity formulas of `neo::ckks::complexity`.
//!
//! Every test routes its measurement through `neo_trace::record`, which
//! serializes recording across test threads so global counters stay
//! attributable.

use neo::ckks::complexity;
use neo::ckks::{CkksContext, CkksParams};
use neo::kernels::crosscheck::{measured_vs_analytic, CheckOp};
use neo::kernels::{ip, MatmulTarget};
use neo::math::Modulus;
use neo::ntt::{complexity::radix2_butterfly_macs, radix2, NttPlan};
use neo::trace::{record, Counter};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn random_residues(m: &Modulus, len: usize, rng: &mut StdRng) -> Vec<u64> {
    (0..len).map(|_| rng.gen_range(0..m.value())).collect()
}

/// The measured butterfly count of one limb's forward NTT equals the
/// analytic `(n/2)·log2 n` at every degree the schemes use — the tally is
/// accumulated from the executed loop structure, so this checks the
/// implementation actually performs the textbook amount of work.
#[test]
fn forward_butterflies_match_analytic_across_sizes() {
    let mut rng = StdRng::seed_from_u64(7);
    for log_n in 10..=14u32 {
        let n = 1usize << log_n;
        let q = neo::math::primes::ntt_primes(36, n, 1).unwrap()[0];
        let plan = NttPlan::new(q, n).unwrap();
        let mut x = random_residues(plan.modulus(), n, &mut rng);
        let ((), w) = record(|| radix2::forward(&plan, &mut x));
        assert_eq!(
            w.get(Counter::NttButterflies),
            radix2_butterfly_macs(n),
            "forward butterflies at n = {n}"
        );
        let ((), w) = record(|| radix2::inverse(&plan, &mut x));
        assert_eq!(
            w.get(Counter::NttButterflies),
            radix2_butterfly_macs(n),
            "inverse butterflies at n = {n}"
        );
    }
}

/// The three kernels the ISSUE gates on: measured counters within 1% of
/// the analytic profile (they are exactly equal for the shipped kernels).
#[test]
fn ntt_bconv_ip_within_one_percent() {
    for op in [
        CheckOp::Ntt { n: 1 << 11 },
        CheckOp::Bconv {
            n: 512,
            alpha: 4,
            alpha_out: 5,
        },
        CheckOp::Ip {
            n: 128,
            batch: 2,
            alpha_p: 3,
            beta: 2,
            beta_t: 3,
        },
    ] {
        let d = measured_vs_analytic(op);
        d.assert_within(0.01);
    }
}

/// Table 2's KLSS Mod Up entry is `β·α·α'` limb operations. Running the
/// actual Mod Up — one exact BConv of each of the `β` ciphertext digits
/// into `R_T` — must tally exactly `N` modular MACs per limb operation.
#[test]
fn klss_mod_up_macs_match_table2() {
    let params = CkksParams::test_small();
    let ctx = CkksContext::new(params.clone()).unwrap();
    let level = params.max_level;
    let n = ctx.degree() as u64;
    let alpha = params.alpha();
    let q_primes = &ctx.q_primes()[..=level];
    let t_primes = ctx.t_primes().to_vec();
    let mut rng = StdRng::seed_from_u64(11);
    // β digits of α limbs each (test_small divides evenly: 6 = 3·2).
    let digits: Vec<Vec<Vec<u64>>> = q_primes
        .chunks(alpha)
        .map(|chunk| {
            chunk
                .iter()
                .map(|&q| {
                    let m = Modulus::new(q).unwrap();
                    random_residues(&m, ctx.degree(), &mut rng)
                })
                .collect()
        })
        .collect();
    assert_eq!(digits.len(), params.beta(level));
    let tables: Vec<_> = q_primes
        .chunks(alpha)
        .map(|chunk| ctx.bconv_table(chunk, &t_primes))
        .collect();
    let ((), w) = record(|| {
        for (digit, table) in digits.iter().zip(&tables) {
            let conv = table.convert_exact(digit);
            assert_eq!(conv.len(), params.alpha_prime());
        }
    });
    let analytic = complexity::klss(&params, level).mod_up;
    assert_eq!(
        w.get(Counter::ModMacs),
        n * analytic,
        "Mod Up: measured MACs vs N × Table 2 limb-ops"
    );
}

/// Table 2's KLSS Inner Product entry is `β·β̃·α'` limb operations per
/// ciphertext. The matrix-form IP kernel on the same geometry must tally
/// exactly `N` GEMM MACs per limb operation.
#[test]
fn klss_inner_product_macs_match_table2() {
    let params = CkksParams::test_small();
    let ctx = CkksContext::new(params.clone()).unwrap();
    let level = params.max_level;
    let n = ctx.degree();
    let (beta, beta_t) = (params.beta(level), params.beta_tilde(level));
    let moduli = ctx.t_moduli().to_vec();
    assert_eq!(moduli.len(), params.alpha_prime());
    let mut rng = StdRng::seed_from_u64(13);
    let c: Vec<Vec<Vec<u64>>> = (0..beta)
        .map(|_| {
            moduli
                .iter()
                .map(|m| random_residues(m, n, &mut rng))
                .collect()
        })
        .collect();
    let evk: Vec<Vec<Vec<Vec<u64>>>> = (0..beta_t)
        .map(|_| {
            (0..beta)
                .map(|_| {
                    moduli
                        .iter()
                        .map(|m| random_residues(m, n, &mut rng))
                        .collect()
                })
                .collect()
        })
        .collect();
    let (out, w) = record(|| ip::ip_matrix(&moduli, 1, &c, &evk, MatmulTarget::Cuda));
    assert_eq!(out.len(), beta_t);
    let analytic = complexity::klss(&params, level).inner_product;
    assert_eq!(
        w.get(Counter::GemmMacs),
        n as u64 * analytic,
        "Inner Product: measured GEMM MACs vs N × Table 2 limb-ops"
    );
}
