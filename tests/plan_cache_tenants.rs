//! Multi-tenant NTT plan-cache regression: one tenant's traffic must not
//! evict, quarantine, or rebuild the plans another tenant's traffic
//! already cached.
//!
//! The global plan cache is keyed `(q, n, backend)` — *parameter* state,
//! not tenant state — so every tenant of one parameter set shares one
//! resident plan family. Two regressions are pinned here:
//!
//! 1. warm-up/execution for later tenants over the same context must be
//!    pure cache hits (no rebuild, no eviction), and
//! 2. recovery from a *non-NTT* fault (a TCU fragment flip) must not
//!    trigger the plan-cache quarantine sweep: the sweep takes the
//!    global write lock and, under armed injection, can evict healthy
//!    tenants' plans — it is reserved for faults detected at NTT sites.
//!
//! Own binary: the assertions read process-global cache statistics, which
//! parallel tests inside a shared binary would pollute.

use neo::fault::{FaultPlan, FaultScope, FaultSite, FaultSpec};
use neo::ntt::cache;
use neo::prelude::*;
use neo::serve::{ServeConfig, ServiceCore, TenantRegistry};
use std::sync::Arc;

fn square_and_add() -> BatchProgram {
    let mut p = BatchProgram::new();
    let sq = p
        .try_push(BatchOp::HMult(Slot::Input(0), Slot::Input(0)))
        .expect("push");
    let rs = p.try_push(BatchOp::Rescale(sq)).expect("push");
    p.try_push(BatchOp::HAdd(rs, rs)).expect("push");
    p
}

/// Interleaved multi-tenant traffic is hit-only once the plan family is
/// resident: no evictions, no discarded builds, stable entry count.
#[test]
fn interleaved_tenants_do_not_disturb_plan_cache() {
    let registry = Arc::new(TenantRegistry::new(CkksParams::test_tiny()).expect("params"));
    for id in 0..4u64 {
        registry.register_default(id, 1000 + id).expect("register");
    }
    let mut core = ServiceCore::new(Arc::clone(&registry), ServeConfig::default());
    let level = 3usize;

    // Tenant 0 warms the plan family for this parameter set.
    {
        let s = registry.get(0).expect("tenant");
        let ct = s.engine().encrypt_f64(&[0.5], level).expect("enc");
        core.submit(0, square_and_add(), vec![ct]).expect("submit");
        let responses = core.run_until_idle();
        assert!(responses[0].outcome.is_ok());
    }
    let warmed = cache::stats();
    assert!(warmed.entries > 0, "tenant 0 should have populated plans");

    // Tenants 1..4, interleaved twice each: pure hits against the same
    // resident plans.
    for round in 0..2 {
        for id in 1..4u64 {
            let s = registry.get(id).expect("tenant");
            let ct = s
                .engine()
                .encrypt_f64(&[0.25 * (id as f64 + 1.0)], level)
                .expect("enc");
            core.submit(id, square_and_add(), vec![ct]).expect("submit");
            let responses = core.run_until_idle();
            let results = responses[0].outcome.as_ref().expect("served");
            assert!(
                results.iter().all(Result::is_ok),
                "round {round} tenant {id}: clean execution"
            );
        }
    }
    let after = cache::stats();
    assert_eq!(
        after.entries, warmed.entries,
        "later tenants must not grow or shrink the resident plan set"
    );
    assert_eq!(
        after.evictions, warmed.evictions,
        "no tenant's traffic may evict another's cached plans"
    );
    assert_eq!(
        after.discarded_builds, warmed.discarded_builds,
        "no rebuild races once the family is resident"
    );
    assert!(
        after.hits > warmed.hits,
        "interleaved tenants should be served from cache"
    );
}

/// Recovery from a fault detected at a *non-NTT* site (an op-level
/// spurious-result fault) must not run the plan-cache quarantine
/// sweep — the sweep is the
/// cross-tenant hazard the serve layer exists to contain.
#[test]
fn op_fault_recovery_leaves_plan_cache_alone() {
    let engine = FheEngine::new(CkksParams::test_tiny(), 77)
        .expect("engine")
        .with_policy(OpPolicy {
            verify: VerifyPolicy::Always,
            ..OpPolicy::default()
        });
    let level = 3usize;
    let ct = engine.encrypt_f64(&[0.5, -0.5], level).expect("enc");
    let prog = square_and_add();
    engine.warm_program(&prog, level).expect("warm");

    // Clean reference first (also settles the cache).
    let clean = engine
        .execute_batch(&prog, std::slice::from_ref(&ct), false)
        .expect("clean run");
    let before = cache::stats();

    // One detected-and-recovered op-level fault.
    let plan = Arc::new(FaultPlan::new(0xc0de).with_site(FaultSite::CkksOp, FaultSpec::once()));
    let scope = FaultScope::install(Arc::clone(&plan));
    let report = engine
        .execute_batch_with_report(&prog, std::slice::from_ref(&ct), false, 3)
        .expect("recovered run");
    drop(scope);
    assert!(
        plan.injected(FaultSite::CkksOp) >= 1,
        "trial is vacuous: the fault never fired"
    );

    let after = cache::stats();
    assert_eq!(
        after.evictions, before.evictions,
        "op-fault recovery must not evict NTT plans (quarantine sweep is NTT-site-gated)"
    );
    assert_eq!(
        report.plans_quarantined, 0,
        "no plans may be quarantined for a non-NTT fault"
    );
    // And the recovery itself was clean: bit-identical to the reference.
    for (got, want) in report.results.iter().zip(&clean) {
        assert_eq!(
            got.as_ref().expect("recovered"),
            want.as_ref().expect("clean"),
            "recovered output must be bit-identical"
        );
    }
}
