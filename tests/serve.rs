//! Serving-layer contract: backpressure is typed, shedding is per-tenant,
//! and a faulty tenant can never corrupt — or starve — a healthy one.
//!
//! The isolation claim mirrors the fault matrix, one layer up: every op a
//! tenant gets back is either **bit-identical** to that tenant's serial
//! fault-free reference, or a **typed** error; and shedding decisions
//! (queue depth, inflight cap, retry budget) name their reason so clients
//! can distinguish "slow down" from "wrong answer".
//!
//! Own binary: fault plans install process-globally, so every test — and
//! every proptest case — serializes on `test_lock` to keep clean baseline
//! phases out of another test's armed window.

use neo::fault::{FaultPlan, FaultScope, FaultSite, FaultSpec};
use neo::prelude::*;
use neo::serve::{ServeConfig, ServiceCore, TenantConfig, TenantRegistry};
use proptest::prelude::*;
use std::sync::{Arc, Mutex, MutexGuard, OnceLock, PoisonError};

fn test_lock() -> MutexGuard<'static, ()> {
    static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
    LOCK.get_or_init(|| Mutex::new(()))
        .lock()
        .unwrap_or_else(PoisonError::into_inner)
}

/// HMult → Rescale chain plus an independent HAdd: one failing op leaves
/// a clean subset, so partial recovery is observable.
fn mixed_program() -> BatchProgram {
    let mut p = BatchProgram::new();
    let m = p
        .try_push(BatchOp::HMult(Slot::Input(0), Slot::Input(0)))
        .expect("push");
    p.try_push(BatchOp::Rescale(m)).expect("push");
    p.try_push(BatchOp::HAdd(Slot::Input(0), Slot::Input(0)))
        .expect("push");
    p
}

fn always_verify() -> TenantConfig {
    TenantConfig {
        policy: OpPolicy {
            verify: VerifyPolicy::Always,
            ..OpPolicy::default()
        },
        ..TenantConfig::default()
    }
}

/// Typed outcomes a response op may legitimately carry under injection.
fn assert_typed(err: &NeoError, ctx: &str) {
    assert!(
        matches!(
            err.kind(),
            ErrorKind::FaultDetected | ErrorKind::PoisonedInput | ErrorKind::Overloaded
        ),
        "{ctx}: untyped failure {err}"
    );
}

/// Queue-depth shedding surfaces as `Overloaded {{ what: "queue_depth" }}`
/// at submit — before any tenant state is charged.
#[test]
fn queue_depth_backpressure_is_typed() {
    let _l = test_lock();
    let registry = Arc::new(TenantRegistry::new(CkksParams::test_tiny()).expect("params"));
    registry.register_default(0, 7).expect("register");
    let mut cfg = ServeConfig::default();
    cfg.admission.max_queue_depth = 2;
    let mut core = ServiceCore::new(Arc::clone(&registry), cfg);

    let s = registry.get(0).expect("tenant");
    let ct = s.engine().encrypt_f64(&[1.0], 3).expect("enc");
    for _ in 0..2 {
        core.submit(0, mixed_program(), vec![ct.clone()])
            .expect("under the bound");
    }
    let err = core
        .submit(0, mixed_program(), vec![ct.clone()])
        .expect_err("third submit must shed");
    match &err {
        NeoError::Overloaded { what, .. } => assert_eq!(*what, "queue_depth"),
        other => panic!("expected Overloaded, got {other}"),
    }
    assert_eq!(err.kind().name(), "overloaded");

    // Shedding must not leak the inflight slot it briefly acquired.
    let responses = core.run_until_idle();
    assert_eq!(responses.len(), 2);
    assert_eq!(s.inflight(), 0, "shed submit leaked an inflight slot");
}

/// The per-tenant inflight cap sheds only the noisy tenant; a quieter
/// tenant on the same queue is untouched.
#[test]
fn inflight_cap_sheds_only_the_noisy_tenant() {
    let _l = test_lock();
    let registry = Arc::new(TenantRegistry::new(CkksParams::test_tiny()).expect("params"));
    registry
        .register(
            0,
            11,
            TenantConfig {
                max_inflight: 1,
                ..TenantConfig::default()
            },
        )
        .expect("register");
    registry.register_default(1, 12).expect("register");
    let mut core = ServiceCore::new(Arc::clone(&registry), ServeConfig::default());

    let ct0 = registry
        .get(0)
        .expect("t0")
        .engine()
        .encrypt_f64(&[1.0], 3)
        .expect("enc");
    let ct1 = registry
        .get(1)
        .expect("t1")
        .engine()
        .encrypt_f64(&[2.0], 3)
        .expect("enc");

    core.submit(0, mixed_program(), vec![ct0.clone()])
        .expect("first fits the cap");
    let err = core
        .submit(0, mixed_program(), vec![ct0.clone()])
        .expect_err("second exceeds tenant 0's cap");
    match &err {
        NeoError::Overloaded { what, .. } => assert_eq!(*what, "tenant_inflight"),
        other => panic!("expected Overloaded, got {other}"),
    }
    // Tenant 1 is not collateral damage.
    core.submit(1, mixed_program(), vec![ct1])
        .expect("tenant 1 unaffected");

    let responses = core.run_until_idle();
    assert_eq!(responses.len(), 2);
    // The cap frees once the request completes.
    core.submit(0, mixed_program(), vec![ct0])
        .expect("slot released after completion");
    core.run_until_idle();
}

/// A tenant that burns its recovery budget is shed with
/// `Overloaded {{ what: "retry_budget" }}` until the window resets;
/// other tenants keep being served.
#[test]
fn retry_budget_exhaustion_sheds_until_reset() {
    let _l = test_lock();
    let registry = Arc::new(TenantRegistry::new(CkksParams::test_tiny()).expect("params"));
    registry
        .register(
            0,
            21,
            TenantConfig {
                fault_budget: 0, // any recovery work exhausts the window
                ..always_verify()
            },
        )
        .expect("register");
    registry.register_default(1, 22).expect("register");
    let mut core = ServiceCore::new(Arc::clone(&registry), ServeConfig::default());
    let s0 = registry.get(0).expect("t0");
    let ct0 = s0.engine().encrypt_f64(&[0.5, -0.5], 3).expect("enc");
    let clean = s0
        .engine()
        .execute_batch(&mixed_program(), std::slice::from_ref(&ct0), false)
        .expect("clean");

    // One recovered fault while tenant 0's request executes.
    core.submit(0, mixed_program(), vec![ct0.clone()])
        .expect("submit");
    let plan = Arc::new(FaultPlan::new(0xbad9e7).with_site(FaultSite::CkksOp, FaultSpec::once()));
    let scope = FaultScope::install(Arc::clone(&plan));
    let responses = core.run_until_idle();
    drop(scope);
    assert!(
        plan.injected(FaultSite::CkksOp) >= 1,
        "trial is vacuous: the fault never fired"
    );
    // Recovery succeeded (bit-identical) — but it cost budget.
    let results = responses[0].outcome.as_ref().expect("served");
    for (got, want) in results.iter().zip(&clean) {
        assert_eq!(
            got.as_ref().expect("recovered"),
            want.as_ref().expect("clean"),
            "recovered output must be bit-identical"
        );
    }
    assert!(s0.budget_exhausted(), "recovery must charge the budget");

    let err = core
        .submit(0, mixed_program(), vec![ct0.clone()])
        .expect_err("exhausted tenant must be shed");
    match &err {
        NeoError::Overloaded { what, .. } => assert_eq!(*what, "retry_budget"),
        other => panic!("expected Overloaded, got {other}"),
    }
    // Healthy tenant 1 is still served while 0 is shed.
    let ct1 = registry
        .get(1)
        .expect("t1")
        .engine()
        .encrypt_f64(&[1.5], 3)
        .expect("enc");
    core.submit(1, mixed_program(), vec![ct1])
        .expect("tenant 1 served");
    assert!(core.run_until_idle()[0].outcome.is_ok());

    // An operator-driven window reset restores service.
    s0.reset_budget_window();
    core.submit(0, mixed_program(), vec![ct0])
        .expect("restored");
    core.run_until_idle();
}

/// The serve-layer fault matrix, in miniature: many trials of mixed
/// 4-tenant traffic under probabilistic op faults. Every op every tenant
/// gets back is bit-identical to that tenant's serial reference or a
/// typed error, and every submitted request is answered in the same
/// drain — a faulty neighbour neither corrupts nor starves.
#[test]
fn faulty_tenant_never_corrupts_or_starves_neighbours() {
    let _l = test_lock();
    const TRIALS: u64 = 40;
    const TENANTS: u64 = 4;
    let registry = Arc::new(TenantRegistry::new(CkksParams::test_tiny()).expect("params"));
    let mut refs = Vec::new();
    for id in 0..TENANTS {
        let s = registry
            .register(id, 400 + id, always_verify())
            .expect("register");
        let ct = s
            .engine()
            .encrypt_f64(&[0.5 + id as f64, -1.0], 3)
            .expect("enc");
        let clean: Vec<Ciphertext> = s
            .engine()
            .execute_batch(&mixed_program(), std::slice::from_ref(&ct), false)
            .expect("clean")
            .into_iter()
            .map(|r| r.expect("clean op"))
            .collect();
        refs.push((ct, clean));
    }
    let mut core = ServiceCore::new(Arc::clone(&registry), ServeConfig::default());

    let mut injected = 0u64;
    for trial in 0..TRIALS {
        for id in 0..TENANTS {
            core.submit(id, mixed_program(), vec![refs[id as usize].0.clone()])
                .expect("submit");
        }
        let plan = Arc::new(FaultPlan::new(0x5e17e + trial).with_site(
            FaultSite::CkksOp,
            FaultSpec::with_probability_ppm(300_000).max_fires(2),
        ));
        let scope = FaultScope::install(Arc::clone(&plan));
        let responses = core.run_until_idle();
        drop(scope);
        injected += plan.injected(FaultSite::CkksOp);

        // No starvation: every submitted request is answered this drain.
        assert_eq!(
            responses.len(),
            TENANTS as usize,
            "trial {trial}: lost responses"
        );
        for resp in &responses {
            let clean = &refs[resp.tenant as usize].1;
            match &resp.outcome {
                Ok(results) => {
                    for (i, r) in results.iter().enumerate() {
                        match r {
                            Ok(ct) => assert_eq!(
                                ct, &clean[i],
                                "trial {trial} tenant {}: SILENT CORRUPTION at op {i}",
                                resp.tenant
                            ),
                            Err(e) => {
                                assert_typed(e, &format!("trial {trial} tenant {}", resp.tenant));
                            }
                        }
                    }
                }
                Err(e) => assert_typed(e, &format!("trial {trial} tenant {}", resp.tenant)),
            }
        }
        // Trials are independent budget windows.
        for id in 0..TENANTS {
            registry.get(id).expect("tenant").reset_budget_window();
        }
    }
    assert!(
        injected >= TRIALS / 4,
        "matrix is vacuous: only {injected} injections over {TRIALS} trials"
    );
}

// --- property: coalesced serving is observationally serial -----------------

/// Program shapes the generator picks from — each valid at level ≥ 2.
fn program_shape(idx: usize) -> BatchProgram {
    let mut p = BatchProgram::new();
    match idx {
        0 => {
            p.try_push(BatchOp::HAdd(Slot::Input(0), Slot::Input(0)))
                .expect("push");
        }
        1 => {
            let r = p
                .try_push(BatchOp::HRotate(Slot::Input(0), 1))
                .expect("push");
            p.try_push(BatchOp::HAdd(r, Slot::Input(0))).expect("push");
        }
        2 => {
            let m = p
                .try_push(BatchOp::HMult(Slot::Input(0), Slot::Input(0)))
                .expect("push");
            p.try_push(BatchOp::Rescale(m)).expect("push");
        }
        _ => {
            let m = p
                .try_push(BatchOp::HMult(Slot::Input(0), Slot::Input(0)))
                .expect("push");
            let rs = p.try_push(BatchOp::Rescale(m)).expect("push");
            p.try_push(BatchOp::HAdd(rs, rs)).expect("push");
        }
    }
    p
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// For arbitrary tenant mixes, program shapes, and submit orders,
    /// coalesced execution returns exactly what each tenant's own engine
    /// returns serially — byte for byte, in the presence of neighbours.
    #[test]
    fn coalesced_serving_matches_serial_reference(
        shapes in prop::collection::vec(0..4usize, 2..6),
        values in prop::collection::vec(-2.0f64..2.0, 2..6),
        seed in 0u64..1024,
    ) {
        let _l = test_lock();
        let n = shapes.len().min(values.len());
        let registry = Arc::new(
            TenantRegistry::new(CkksParams::test_tiny()).expect("params"),
        );
        let mut expected = Vec::new();
        for id in 0..n as u64 {
            let s = registry.register_default(id, seed ^ (0xa5a5 + id)).expect("register");
            let prog = program_shape(shapes[id as usize]);
            let ct = s
                .engine()
                .encrypt_f64(&[values[id as usize], 0.25], 3)
                .expect("enc");
            let clean: Vec<Ciphertext> = s
                .engine()
                .execute_batch(&prog, std::slice::from_ref(&ct), false)
                .expect("clean")
                .into_iter()
                .map(|r| r.expect("clean op"))
                .collect();
            expected.push((prog, ct, clean));
        }
        let mut core = ServiceCore::new(Arc::clone(&registry), ServeConfig::default());
        // Submit order rotates with the seed — admission must not care.
        for k in 0..n {
            let id = ((k as u64 + seed) % n as u64) as usize;
            core.submit(id as u64, expected[id].0.clone(), vec![expected[id].1.clone()])
                .expect("submit");
        }
        let responses = core.run_until_idle();
        prop_assert_eq!(responses.len(), n);
        for resp in &responses {
            let clean = &expected[resp.tenant as usize].2;
            let results = resp.outcome.as_ref().expect("served");
            prop_assert_eq!(results.len(), clean.len());
            for (i, r) in results.iter().enumerate() {
                let got = r.as_ref().expect("clean traffic must not fail");
                prop_assert_eq!(
                    got, &clean[i],
                    "tenant {} op {} diverged from serial reference", resp.tenant, i
                );
            }
        }
    }
}
