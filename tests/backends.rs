//! Cross-backend bit-identity: the portable and SIMD compute backends
//! must produce byte-for-byte equal outputs on every kernel the
//! [`neo_math::ComputeBackend`] seam covers — forward/inverse NTT, RNS
//! base conversion, and the verified modular GEMM — across random primes
//! and bootstrapping-adjacent degrees. Equality of canonical outputs (not
//! just congruence) is the contract that makes the backend a pure
//! throughput knob: ABFT checksums, integrity tokens, and golden test
//! vectors all remain valid regardless of which backend computed them.

use neo_math::{BackendKind, BconvTable, Modulus, RnsBasis};
use neo_ntt::{radix2, NttPlan};
use neo_tcu::{BackendGemm, CheckedGemm};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn random_vec(rng: &mut StdRng, len: usize, q: u64) -> Vec<u64> {
    (0..len).map(|_| rng.gen_range(0..q)).collect()
}

proptest! {
    // Each case builds fresh plans at large degrees; keep the counts low
    // (the deterministic #[test] cases below pin the n = 2^14 corner).
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Forward and inverse NTT agree bit-for-bit across backends, and the
    /// SIMD round trip restores the input exactly.
    #[test]
    fn ntt_is_bit_identical_across_backends(
        seed in any::<u64>(),
        bits in 30u32..=59,
        log_n in 10u32..=13,
    ) {
        let n = 1usize << log_n;
        let q = neo_math::primes::ntt_primes(bits, n, 1).unwrap()[0];
        let portable = NttPlan::with_backend(q, n, BackendKind::Portable).unwrap();
        let simd = NttPlan::with_backend(q, n, BackendKind::Simd).unwrap();
        let mut rng = StdRng::seed_from_u64(seed);
        let a = random_vec(&mut rng, n, q);
        let (mut fp, mut fs) = (a.clone(), a.clone());
        radix2::forward(&portable, &mut fp);
        radix2::forward(&simd, &mut fs);
        prop_assert_eq!(&fp, &fs, "forward diverged (q={}, n={})", q, n);
        radix2::inverse(&portable, &mut fp);
        radix2::inverse(&simd, &mut fs);
        prop_assert_eq!(&fp, &fs, "inverse diverged (q={}, n={})", q, n);
        prop_assert_eq!(&fs, &a, "round trip lost the input");
    }

    /// Exact and approximate base conversion agree bit-for-bit.
    #[test]
    fn bconv_is_bit_identical_across_backends(
        seed in any::<u64>(),
        src_limbs in 2usize..=4,
        dst_limbs in 2usize..=4,
        n in 33usize..=257,
    ) {
        let src = RnsBasis::new(
            &neo_math::primes::ntt_primes(36, 1 << 10, src_limbs).unwrap(),
        ).unwrap();
        let dst = RnsBasis::new(
            &neo_math::primes::ntt_primes(40, 1 << 10, dst_limbs).unwrap(),
        ).unwrap();
        let portable = BconvTable::new(&src, &dst).unwrap().with_backend(BackendKind::Portable);
        let simd = BconvTable::new(&src, &dst).unwrap().with_backend(BackendKind::Simd);
        let mut rng = StdRng::seed_from_u64(seed);
        let limbs: Vec<Vec<u64>> = src
            .moduli()
            .iter()
            .map(|m| random_vec(&mut rng, n, m.value()))
            .collect();
        prop_assert_eq!(portable.convert_exact(&limbs), simd.convert_exact(&limbs));
        prop_assert_eq!(portable.convert_approx(&limbs), simd.convert_approx(&limbs));
        prop_assert_eq!(portable.scale_limbs(&limbs), simd.scale_limbs(&limbs));
    }

    /// The ABFT-verified GEMM accepts both backends' products and the
    /// products are bit-identical, across random primes and shapes.
    #[test]
    fn gemm_verified_is_bit_identical_across_backends(
        seed in any::<u64>(),
        bits in 30u32..=61,
        m in 1usize..16,
        k in 1usize..80,
        n in 1usize..16,
    ) {
        let q = Modulus::new(
            neo_math::primes::ntt_primes(bits, 1 << 10, 1).unwrap()[0],
        ).unwrap();
        let mut rng = StdRng::seed_from_u64(seed);
        let a = random_vec(&mut rng, m * k, q.value());
        let b = random_vec(&mut rng, k * n, q.value());
        let (mut cp, mut cs) = (vec![0u64; m * n], vec![0u64; m * n]);
        CheckedGemm::new(BackendGemm::new(BackendKind::Portable))
            .gemm_verified(&q, &a, &b, m, k, n, &mut cp)
            .unwrap();
        CheckedGemm::new(BackendGemm::new(BackendKind::Simd))
            .gemm_verified(&q, &a, &b, m, k, n, &mut cs)
            .unwrap();
        prop_assert_eq!(cp, cs);
    }
}

/// The acceptance corner pinned deterministically: `n = 2^14` forward and
/// inverse NTT, bit-identical across backends at a 55-bit prime.
#[test]
fn ntt_n16384_bit_identity() {
    let n = 1usize << 14;
    let q = neo_math::primes::ntt_primes(55, n, 1).unwrap()[0];
    let portable = NttPlan::with_backend(q, n, BackendKind::Portable).unwrap();
    let simd = NttPlan::with_backend(q, n, BackendKind::Simd).unwrap();
    let mut rng = StdRng::seed_from_u64(16384);
    let a = random_vec(&mut rng, n, q);
    let (mut fp, mut fs) = (a.clone(), a.clone());
    radix2::forward(&portable, &mut fp);
    radix2::forward(&simd, &mut fs);
    assert_eq!(fp, fs);
    radix2::inverse(&simd, &mut fs);
    assert_eq!(fs, a);
}

/// Fault-matrix spot run against the SIMD backend: an injected NTT-stage
/// fault inside a SIMD-backed CKKS engine is still detected by the ABFT
/// spot checks — detection does not depend on which backend computed the
/// transform.
#[test]
fn simd_engine_detects_injected_ntt_fault() {
    use neo_ckks::{encoding::Complex64, CkksParams, ErrorKind, FheEngine, OpPolicy, VerifyPolicy};
    use neo_fault::{FaultPlan, FaultScope, FaultSite, FaultSpec};
    use std::sync::Arc;

    let mut params = CkksParams::test_tiny();
    params.backend = BackendKind::Simd;
    // Engine ops install their own VerifyScope from the policy, so the
    // always-verify request must live there.
    let engine = FheEngine::new(params, 7).unwrap().with_policy(OpPolicy {
        verify: VerifyPolicy::Always,
        ..OpPolicy::default()
    });
    assert_eq!(engine.backend(), BackendKind::Simd);
    // Encode outside the armed window so the single fault lands inside
    // the encryption's NTTs, not the encoder's.
    let pt = engine
        .encode(&[Complex64::new(0.5, -1.25)], engine.max_level())
        .unwrap();

    let plan = Arc::new(FaultPlan::new(0xf00d).with_site(FaultSite::NttStage, FaultSpec::once()));
    let scope = FaultScope::install(plan.clone());
    let result = engine.encrypt(&pt);
    drop(scope);
    assert_eq!(
        plan.injected(FaultSite::NttStage),
        1,
        "fault was not injected"
    );
    let err = result.expect_err("injected NTT fault must be detected under SIMD");
    assert_eq!(err.kind(), ErrorKind::FaultDetected);
}
